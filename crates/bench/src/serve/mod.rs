//! `repro serve`: a crash-safe leakage-audit daemon.
//!
//! The daemon listens on a unix-domain socket speaking line-delimited
//! JSON (see [`session`] for the protocol), accepts audit jobs, runs
//! them one at a time on the worker pool via the crash-resilient sweep
//! harness, and streams `microsampler-trial-v1` records plus a final
//! verdict back to the submitting client.
//!
//! Robustness properties:
//!
//! * **Crash safety** — every accepted job is logged to an append-only
//!   write-ahead job log ([`queue::WalWriter`]) before it is enqueued;
//!   on restart, [`recovery::replay_wal`] re-enqueues unfinished jobs,
//!   and their trial sweeps resume from the content-addressed trial
//!   journal, so a `kill -9` mid-job re-runs only the missing trials
//!   and the final verdict is bit-identical to an uninterrupted run.
//! * **Bounded retry** — a job whose attempt exceeds the configured
//!   wall-clock budget is retried with deterministic capped exponential
//!   backoff, and quarantined once its attempts are exhausted.
//! * **Cooperative cancellation** — a client disconnect or explicit
//!   `cancel` op latches the job's [`microsampler_par::CancelToken`];
//!   the sweep drains (running trials finish, unstarted ones skip) and
//!   the job lands in the `cancelled` state.
//! * **Graceful shutdown** — SIGTERM/SIGINT stop the accept loop,
//!   drain every queued and in-flight job, flush and compact the WAL,
//!   and exit 0.
//! * **Backpressure** — a bounded job queue plus a per-client in-flight
//!   quota reject overload with a structured `busy` response instead of
//!   accepting unbounded work.

pub mod queue;
pub mod recovery;
pub mod session;

use crate::sweep::{self, SweepOptions};
use microsampler_core::{analyze, SeqConfig, SeqVerdict};
use microsampler_obs::{diag, diag_info, diag_warn, metrics, Value};
use microsampler_par::IsolationPolicy;
use queue::{JobHandle, JobSpec, JobState, WalWriter};
use std::collections::{BTreeMap, VecDeque};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration (the `repro serve` flags).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on.
    pub socket: PathBuf,
    /// State directory: serve WAL, trial journals, metrics snapshot.
    pub state_dir: PathBuf,
    /// Maximum outstanding (queued + running) jobs before submissions
    /// are rejected with `busy: queue-full`.
    pub queue_cap: usize,
    /// Maximum outstanding jobs per client tag before submissions are
    /// rejected with `busy: client-quota`.
    pub per_client: usize,
    /// Wall-clock budget per job attempt (`None` = unlimited).
    pub job_timeout: Option<Duration>,
    /// Retries after a timed-out attempt (total attempts = retries + 1).
    pub job_retries: u32,
    /// Base delay of the deterministic exponential backoff between job
    /// attempts (doubles per attempt, capped at [`ServeOptions::backoff_cap`]).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            socket: PathBuf::from("serve-state/serve.sock"),
            state_dir: PathBuf::from("serve-state"),
            queue_cap: 16,
            per_client: 4,
            job_timeout: None,
            job_retries: 2,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(4),
        }
    }
}

/// Why a submission was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded job queue is at capacity.
    QueueFull,
    /// The submitting client already has its quota of outstanding jobs.
    ClientQuota,
    /// The daemon is draining for shutdown.
    ShuttingDown,
}

impl SubmitError {
    /// Stable reason string for the `busy` response.
    pub fn reason(self) -> &'static str {
        match self {
            SubmitError::QueueFull => "queue-full",
            SubmitError::ClientQuota => "client-quota",
            SubmitError::ShuttingDown => "shutting-down",
        }
    }
}

/// Shared daemon state: job queue, registry, quotas, and the WAL.
pub struct ServeState {
    /// Daemon configuration.
    pub opts: ServeOptions,
    queue: Mutex<VecDeque<Arc<JobHandle>>>,
    queue_changed: Condvar,
    jobs: Mutex<BTreeMap<String, Arc<JobHandle>>>,
    inflight: Mutex<BTreeMap<String, usize>>,
    outstanding: AtomicUsize,
    wal: Mutex<WalWriter>,
    next_seq: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServeState {
    /// Creates the state directory, replays the WAL, compacts it, and
    /// re-enqueues every unfinished job.
    ///
    /// # Errors
    ///
    /// Returns a message if the state directory or WAL is unusable, or
    /// if the WAL is corrupt (beyond a torn trailing line).
    pub fn new(opts: ServeOptions) -> Result<Arc<ServeState>, String> {
        std::fs::create_dir_all(&opts.state_dir).map_err(|e| {
            format!("cannot create state directory {}: {e}", opts.state_dir.display())
        })?;
        let wal_path = opts.state_dir.join("serve-wal.jsonl");
        let replay = recovery::replay_wal(&wal_path)?;
        let mut wal = WalWriter::open(&wal_path)?;
        let state = ServeState {
            next_seq: AtomicU64::new(replay.next_seq),
            opts,
            queue: Mutex::new(VecDeque::new()),
            queue_changed: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            inflight: Mutex::new(BTreeMap::new()),
            outstanding: AtomicUsize::new(0),
            wal: Mutex::new(WalWriter::open(&wal_path)?),
            shutting_down: AtomicBool::new(false),
        };
        // Compact away finished-job history up front: the recovered
        // pending set is exactly what the WAL needs to carry.
        let mut keep = Vec::new();
        for pending in &replay.pending {
            let handle =
                Arc::new(JobHandle::new(pending.seq, &pending.client, pending.spec.clone(), true));
            keep.push(queue::submitted_event(&handle));
            diag_info!("serve: recovered unfinished job {} from the WAL", handle.id);
            state.enqueue(&handle);
        }
        if let Err(e) = wal.compact(&keep) {
            diag_warn!("serve WAL compaction failed (continuing uncompacted): {e}");
        }
        *state.wal.lock().unwrap_or_else(|p| p.into_inner()) = wal;
        Ok(Arc::new(state))
    }

    fn enqueue(&self, job: &Arc<JobHandle>) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        *self
            .inflight
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(job.client.clone())
            .or_insert(0) += 1;
        self.jobs.lock().unwrap_or_else(|p| p.into_inner()).insert(job.id.clone(), job.clone());
        self.queue.lock().unwrap_or_else(|p| p.into_inner()).push_back(job.clone());
        self.queue_changed.notify_all();
    }

    /// Accepts a job: WAL-logs it, then enqueues it for the executor.
    ///
    /// # Errors
    ///
    /// Rejects with a [`SubmitError`] under shutdown, a full queue, or
    /// an exhausted per-client quota — the backpressure contract.
    pub fn submit(&self, client: &str, spec: JobSpec) -> Result<Arc<JobHandle>, SubmitError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        if self.outstanding.load(Ordering::SeqCst) >= self.opts.queue_cap {
            return Err(SubmitError::QueueFull);
        }
        let client_jobs =
            *self.inflight.lock().unwrap_or_else(|p| p.into_inner()).get(client).unwrap_or(&0);
        if client_jobs >= self.opts.per_client {
            return Err(SubmitError::ClientQuota);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(JobHandle::new(seq, client, spec, false));
        // WAL before queue: the accept must be durable before anything
        // can observe (or crash out of) the job.
        self.wal.lock().unwrap_or_else(|p| p.into_inner()).append(&queue::submitted_event(&job));
        self.enqueue(&job);
        metrics::record("serve.jobs.submitted", 1.0);
        Ok(job)
    }

    /// Latches the cancel token of a live job; returns whether the id
    /// named one.
    pub fn cancel(&self, job_id: &str) -> bool {
        let job = self.jobs.lock().unwrap_or_else(|p| p.into_inner()).get(job_id).cloned();
        match job {
            Some(job) if !job.is_terminal() => {
                job.request_cancel();
                true
            }
            _ => false,
        }
    }

    /// Looks up a job by id.
    pub fn job(&self, job_id: &str) -> Option<Arc<JobHandle>> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner()).get(job_id).cloned()
    }

    /// The trial journal for a content key, inside the state directory.
    pub fn journal_path(&self, key: &str) -> PathBuf {
        self.opts.state_dir.join(format!("trials-{key}.jsonl"))
    }

    /// Whether the daemon is draining for shutdown.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Queued + running jobs.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Structured status snapshot for the `status` op and heartbeats.
    pub fn status_json(&self) -> Value {
        let queued = self.queue.lock().unwrap_or_else(|p| p.into_inner()).len();
        let outstanding = self.outstanding();
        Value::object()
            .field("queued", queued)
            .field("running", outstanding.saturating_sub(queued))
            .field("outstanding", outstanding)
            .field("jobs_seen", self.jobs.lock().unwrap_or_else(|p| p.into_inner()).len())
            .field("shutting_down", self.is_shutting_down())
            .build()
    }

    /// Begins the drain: no new submissions, and the executor exits
    /// once the queue is empty.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.queue_changed.notify_all();
    }

    /// Executor loop: pops jobs in submission order and runs each to a
    /// terminal state. Exits when shutdown is requested *and* the queue
    /// is drained.
    pub fn executor_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .queue_changed
                        .wait_timeout(queue, Duration::from_millis(200))
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
            };
            self.run_job(&job);
        }
    }

    /// Runs one job through the attempt loop to a terminal state.
    ///
    /// Each attempt resumes the content-addressed trial journal, so
    /// retries (and post-crash re-runs) redo only unfinished trials. A
    /// timed-out attempt retries after a deterministic capped
    /// exponential backoff; exhausting the attempts quarantines the job.
    pub fn run_job(&self, job: &Arc<JobHandle>) {
        let started = Instant::now();
        let attempts_max = self.opts.job_retries + 1;
        // Job-level backoff reuses the per-trial policy's deterministic
        // schedule: base * 2^(attempt-1), clamped to the cap.
        let backoff = IsolationPolicy {
            backoff_base: self.opts.backoff_base,
            backoff_cap: self.opts.backoff_cap,
            ..IsolationPolicy::default()
        };
        let config = match job.spec.core_config() {
            Ok(config) => config,
            Err(e) => {
                // Unreachable through submit/recovery (both validate),
                // but the state machine still needs a terminal answer.
                self.finish(
                    job,
                    JobState::Quarantined { class: "config".to_string(), message: e, attempts: 0 },
                );
                return;
            }
        };
        for attempt in 1..=attempts_max {
            if job.cancel.is_cancelled() {
                self.finish(job, JobState::Cancelled);
                return;
            }
            self.wal
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .append(&queue::started_event(&job.id, attempt));
            job.set_state(JobState::Running { attempt });
            diag_info!("serve: {} attempt {attempt}/{attempts_max} ({})", job.id, job.key);
            let journal = self.journal_path(&job.key);
            if !journal.exists() {
                // Resume against a fresh key starts from an empty
                // journal instead of a missing-file warning.
                if let Err(e) = std::fs::write(&journal, "") {
                    diag_warn!("cannot create trial journal {}: {e}", journal.display());
                }
            }
            let opts = SweepOptions {
                isolate: true,
                journal: Some(journal),
                resume: true,
                max_cycles: job.spec.max_cycles,
                wedge_trial: job.spec.wedge_trial,
                cancel: Some(job.cancel.clone()),
                deadline: self.opts.job_timeout.map(|t| Instant::now() + t),
                sequential: job.spec.sequential.then(SeqConfig::default),
                ..SweepOptions::default()
            };
            sweep::reset_events();
            let out = sweep::run_modexp_sweep(
                job.spec.kernel,
                &config,
                job.spec.keys,
                job.spec.key_bytes,
                job.spec.seed,
                &opts,
            );
            if job.cancel.is_cancelled() {
                self.finish(job, JobState::Cancelled);
                return;
            }
            if out.cancelled > 0 {
                // Only the deadline skips trials here (cancellation was
                // handled above): the attempt ran out of budget.
                let reason = format!(
                    "attempt {attempt} exceeded its {:?} budget with {} trials unfinished",
                    self.opts.job_timeout.unwrap_or_default(),
                    out.cancelled
                );
                if attempt < attempts_max {
                    let delay = backoff.backoff_delay(attempt);
                    self.wal
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .append(&queue::retrying_event(&job.id, attempt, &reason, delay));
                    job.set_state(JobState::Retrying { attempt });
                    metrics::record("serve.jobs.retries", 1.0);
                    diag_warn!("serve: {} {reason}; retrying in {delay:?}", job.id);
                    std::thread::sleep(delay);
                    continue;
                }
                self.finish(
                    job,
                    JobState::Quarantined {
                        class: "timed-out".to_string(),
                        message: reason,
                        attempts: attempts_max,
                    },
                );
                return;
            }
            // The sweep finished (completed + restored + quarantined
            // trials cover every key, or the confidence sequence closed
            // and skipped the rest): analyze and publish the verdict.
            let report = analyze(&out.iterations);
            let leaky = match out.stop.as_ref().map(|t| t.verdict) {
                Some(SeqVerdict::Leaky) => true,
                Some(SeqVerdict::Clean) => false,
                _ => report.is_leaky(),
            };
            let verdict = verdict_json(job, &report, &out);
            metrics::record("serve.job.duration_sec", started.elapsed().as_secs_f64());
            self.finish(job, JobState::Done { leaky, verdict });
            return;
        }
    }

    /// Publishes a terminal state: WAL first (durability), then the
    /// handle (visibility), then the quota bookkeeping.
    fn finish(&self, job: &Arc<JobHandle>, state: JobState) {
        if let Some(event) = queue::terminal_event(&job.id, &state) {
            self.wal.lock().unwrap_or_else(|p| p.into_inner()).append(&event);
        }
        metrics::record(&format!("serve.jobs.{}", state.name()), 1.0);
        diag_info!("serve: {} -> {}", job.id, state.name());
        job.set_state(state);
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        if let Some(n) =
            self.inflight.lock().unwrap_or_else(|p| p.into_inner()).get_mut(&job.client)
        {
            *n = n.saturating_sub(1);
        }
        self.maybe_compact();
    }

    /// Compacts the WAL once enough finished-job history accumulates.
    fn maybe_compact(&self) {
        let mut wal = self.wal.lock().unwrap_or_else(|p| p.into_inner());
        if wal.terminal_since_compact() < 64 {
            return;
        }
        let keep = self.live_submitted_events();
        if let Err(e) = wal.compact(&keep) {
            diag_warn!("serve WAL compaction failed (continuing uncompacted): {e}");
        }
    }

    /// `submitted` events for every non-terminal job (the compacted WAL
    /// contents).
    fn live_submitted_events(&self) -> Vec<Value> {
        let jobs = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        let mut live: Vec<&Arc<JobHandle>> = jobs.values().filter(|j| !j.is_terminal()).collect();
        live.sort_by_key(|j| j.seq);
        live.iter().map(|j| queue::submitted_event(j)).collect()
    }

    /// Final WAL compaction (shutdown path).
    pub fn compact_wal(&self) {
        let keep = self.live_submitted_events();
        if let Err(e) = self.wal.lock().unwrap_or_else(|p| p.into_inner()).compact(&keep) {
            diag_warn!("serve WAL compaction failed: {e}");
        }
    }
}

/// The deterministic verdict object streamed to clients.
///
/// Everything here is a pure function of the job spec and the pooled
/// iterations — per-run accounting (how many trials were restored vs
/// re-run) deliberately stays out, so an interrupted-and-recovered job
/// renders the exact bytes an uninterrupted one does. Sequential jobs
/// additionally carry the `microsampler-stop-v1` stopping trace, which
/// is equally deterministic: a resumed sweep replays the journal through
/// the same look schedule and latches the same stopping point.
fn verdict_json(
    job: &JobHandle,
    report: &microsampler_core::AnalysisReport,
    out: &sweep::SweepOutcome,
) -> Value {
    let quarantined: Vec<Value> = out
        .quarantined
        .iter()
        .map(|q| {
            Value::object()
                .field("id", q.id.as_str())
                .field("class", q.class.name())
                .field("message", q.message.as_str())
                .field("attempts", q.attempts)
                .build()
        })
        .collect();
    let leaky = match out.stop.as_ref().map(|t| t.verdict) {
        Some(SeqVerdict::Leaky) => true,
        Some(SeqVerdict::Clean) => false,
        _ => report.is_leaky(),
    };
    let b = Value::object()
        .field("key", job.key.as_str())
        .field("kernel", job.spec.kernel.name())
        .field("leaky", leaky);
    let b = match &out.stop {
        Some(trace) => b.field("stop", trace.to_json(job.key.as_str())),
        None => b,
    };
    b.field("quarantined_trials", Value::Array(quarantined))
        .field("report", report.to_json())
        .build()
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only an atomic store: everything else is async-signal-unsafe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that latch the shutdown flag. Uses
/// the platform's `signal(2)` directly — the workspace links no libc
/// crate, and the handler does nothing a signal context forbids.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
        signal(SIGINT, on_shutdown_signal as *const () as usize);
    }
}

/// Runs the daemon until SIGTERM/SIGINT, then drains and exits cleanly.
///
/// # Errors
///
/// Returns a message if the state directory, WAL, or socket cannot be
/// set up. Runtime errors (a misbehaving client, a failed WAL append)
/// are diagnosed and survived, not returned.
pub fn serve(opts: ServeOptions) -> Result<(), String> {
    let state = ServeState::new(opts)?;
    metrics::set_enabled(true);
    install_signal_handlers();
    if state.opts.socket.exists() {
        std::fs::remove_file(&state.opts.socket).map_err(|e| {
            format!("cannot remove stale socket {}: {e}", state.opts.socket.display())
        })?;
    }
    if let Some(dir) = state.opts.socket.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create socket directory {}: {e}", dir.display()))?;
        }
    }
    let listener = UnixListener::bind(&state.opts.socket)
        .map_err(|e| format!("cannot bind {}: {e}", state.opts.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make the listener nonblocking: {e}"))?;
    diag_info!("serve: listening on {}", state.opts.socket.display());

    let executor = {
        let state = state.clone();
        std::thread::spawn(move || state.executor_loop())
    };
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut last_beat = Instant::now();
    let started = Instant::now();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let state = state.clone();
                sessions.push(std::thread::spawn(move || session::handle_client(&state, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                diag_warn!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        sessions.retain(|s| !s.is_finished());
        if last_beat.elapsed() >= Duration::from_secs(2) {
            last_beat = Instant::now();
            let status = state.status_json();
            diag::heartbeat(
                "serve",
                &format!(
                    "{} queued, {} running, uptime {}s",
                    status.get("queued").and_then(Value::as_u64).unwrap_or(0),
                    status.get("running").and_then(Value::as_u64).unwrap_or(0),
                    started.elapsed().as_secs()
                ),
            );
        }
    }

    diag_info!("serve: shutdown requested; draining {} outstanding jobs", state.outstanding());
    state.shutdown();
    if executor.join().is_err() {
        diag_warn!("serve: executor thread panicked during drain");
    }
    for session in sessions {
        // Sessions observe terminal job states (every job just drained)
        // or their client hanging up; both end the thread.
        session.join().ok();
    }
    state.compact_wal();
    let snapshot = metrics::snapshot();
    let metrics_path = state.opts.state_dir.join("serve-metrics.json");
    if let Err(e) =
        std::fs::write(&metrics_path, metrics::snapshot_to_json(&snapshot).render_pretty())
    {
        diag_warn!("cannot write {}: {e}", metrics_path.display());
    }
    std::fs::remove_file(&state.opts.socket).ok();
    diag_info!("serve: drained and exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_opts(tag: &str) -> ServeOptions {
        let dir = std::env::temp_dir()
            .join(format!("microsampler-serve-state-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ServeOptions {
            socket: dir.join("serve.sock"),
            state_dir: dir,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..ServeOptions::default()
        }
    }

    fn quick_spec() -> JobSpec {
        JobSpec { keys: 2, key_bytes: 1, ..JobSpec::default() }
    }

    #[test]
    fn submit_enforces_queue_and_client_quotas() {
        let opts = ServeOptions { queue_cap: 2, per_client: 1, ..test_opts("quota") };
        let state_dir = opts.state_dir.clone();
        let state = ServeState::new(opts).unwrap();
        let first = state.submit("ci", quick_spec()).unwrap();
        assert_eq!(first.id, "job-0");
        assert_eq!(
            state.submit("ci", quick_spec()).unwrap_err(),
            SubmitError::ClientQuota,
            "one outstanding job per client"
        );
        state.submit("dev", quick_spec()).unwrap();
        assert_eq!(
            state.submit("other", quick_spec()).unwrap_err(),
            SubmitError::QueueFull,
            "two outstanding jobs fill the queue"
        );
        state.shutdown();
        assert_eq!(state.submit("ci", quick_spec()).unwrap_err(), SubmitError::ShuttingDown);
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn zero_budget_job_is_quarantined_after_backed_off_retries() {
        let opts = ServeOptions {
            job_timeout: Some(Duration::ZERO),
            job_retries: 2,
            ..test_opts("timeout")
        };
        let state_dir = opts.state_dir.clone();
        let state = ServeState::new(opts).unwrap();
        let job = state.submit("ci", quick_spec()).unwrap();
        state.run_job(&job);
        match job.state() {
            JobState::Quarantined { class, attempts, .. } => {
                assert_eq!(class, "timed-out");
                assert_eq!(attempts, 3, "retries + 1 attempts before quarantine");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let wal = std::fs::read_to_string(state_dir.join("serve-wal.jsonl")).unwrap();
        assert_eq!(wal.matches("\"event\":\"started\"").count(), 3);
        assert_eq!(wal.matches("\"event\":\"retrying\"").count(), 2);
        assert_eq!(wal.matches("\"event\":\"quarantined\"").count(), 1);
        assert_eq!(state.outstanding(), 0, "terminal jobs release their queue slot");
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn cancelled_job_terminates_without_running() {
        let opts = test_opts("cancel");
        let state_dir = opts.state_dir.clone();
        let state = ServeState::new(opts).unwrap();
        let job = state.submit("ci", quick_spec()).unwrap();
        assert!(state.cancel(&job.id));
        assert!(!state.cancel("job-999"), "unknown ids are not cancellable");
        state.run_job(&job);
        assert!(matches!(job.state(), JobState::Cancelled));
        let wal = std::fs::read_to_string(state_dir.join("serve-wal.jsonl")).unwrap();
        assert!(wal.contains("\"event\":\"cancelled\""));
        assert!(!state.cancel(&job.id), "terminal jobs are not cancellable");
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn completed_job_produces_deterministic_verdict_and_replayable_journal() {
        let opts = test_opts("verdict");
        let state_dir = opts.state_dir.clone();
        let state = ServeState::new(opts).unwrap();
        let job = state.submit("ci", quick_spec()).unwrap();
        state.run_job(&job);
        let JobState::Done { verdict: first, .. } = job.state() else {
            panic!("expected done, got {:?}", job.state());
        };
        assert!(state.journal_path(&job.key).exists(), "trials are journaled by content key");
        // A resubmission of the same spec replays the journal: zero
        // fresh trials, byte-identical verdict.
        let again = state.submit("ci", quick_spec()).unwrap();
        assert_eq!(again.key, job.key, "same spec, same content address");
        state.run_job(&again);
        let JobState::Done { verdict: second, .. } = again.state() else {
            panic!("expected done, got {:?}", again.state());
        };
        assert_eq!(
            first.render_compact(),
            second.render_compact(),
            "replayed verdict is bit-identical"
        );
        std::fs::remove_dir_all(&state_dir).ok();
    }

    #[test]
    fn recovery_reenqueues_unfinished_jobs_once() {
        let opts = test_opts("recover");
        let state_dir = opts.state_dir.clone();
        {
            let state = ServeState::new(opts.clone()).unwrap();
            let finished = state.submit("ci", quick_spec()).unwrap();
            state.run_job(&finished);
            state.submit("ci", JobSpec { seed: 77, ..quick_spec() }).unwrap();
            // Simulated crash: the state (and its queue) simply drops.
        }
        let state = ServeState::new(opts).unwrap();
        assert_eq!(state.outstanding(), 1, "only the unfinished job recovers");
        let recovered = state.job("job-1").expect("recovered job keeps its id");
        assert!(recovered.recovered);
        assert_eq!(recovered.spec.seed, 77);
        let next = state.submit("ci", quick_spec()).unwrap();
        assert_eq!(next.id, "job-2", "sequence numbering survives the restart");
        std::fs::remove_dir_all(&state_dir).ok();
    }
}
