//! Crash recovery: replays the serve WAL into the set of jobs that were
//! accepted but never reached a terminal state.
//!
//! The invariants the WAL upholds (and this module relies on):
//!
//! 1. A job's `submitted` event is durable **before** the job is
//!    enqueued, so an accepted job can never vanish in a crash.
//! 2. Terminal events (`done`/`quarantined`/`cancelled`) are appended
//!    **before** the result is announced to any client, so a job a
//!    client saw finish is never re-run.
//! 3. Trial-level progress lives in the content-addressed trial journal
//!    (`trials-<key>.jsonl`), not the WAL — re-running a recovered job
//!    resumes from that journal and is therefore bit-identical to an
//!    uninterrupted run.
//!
//! Like the trial journal loader, replay tolerates exactly one torn
//! trailing line (a `kill -9` mid-append leaves a partial record with no
//! trailing newline); malformed newline-terminated lines are corruption
//! and abort the replay.

use super::queue::{JobSpec, WAL_SCHEMA};
use microsampler_obs::{diag_warn, json, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// One job the WAL says was accepted but never finished.
#[derive(Clone, Debug)]
pub struct PendingJob {
    /// Submission sequence number (replay preserves submission order).
    pub seq: u64,
    /// Stable job id from the original submission.
    pub id: String,
    /// Submitting client's tag.
    pub client: String,
    /// The job to re-run.
    pub spec: JobSpec,
}

/// Result of replaying a WAL.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// Unfinished jobs in submission order.
    pub pending: Vec<PendingJob>,
    /// Next submission sequence number (1 + the highest seen).
    pub next_seq: u64,
    /// Whether a torn trailing line was skipped.
    pub skipped_torn: bool,
}

/// Replays the WAL at `path`. A missing file is a fresh state directory,
/// not an error.
///
/// # Errors
///
/// Returns a message naming the offending line for unparseable or
/// schema-violating records (other than a torn trailing line).
pub fn replay_wal(path: &Path) -> Result<WalReplay, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(format!("cannot read serve WAL {}: {e}", path.display())),
    };
    let mut replay = WalReplay::default();
    let mut live: BTreeMap<String, PendingJob> = BTreeMap::new();
    let last_idx = text.lines().count().saturating_sub(1);
    let torn_tail_possible = !text.is_empty() && !text.ends_with('\n');
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match replay_line(line, &mut live, &mut replay.next_seq) {
            Ok(()) => {}
            Err(msg) if torn_tail_possible && idx == last_idx => {
                diag_warn!(
                    "serve WAL {} line {}: skipping torn trailing record \
                     (crash mid-append?): {msg}",
                    path.display(),
                    idx + 1
                );
                replay.skipped_torn = true;
            }
            Err(msg) => {
                return Err(format!("serve WAL {} line {}: {msg}", path.display(), idx + 1))
            }
        }
    }
    let mut pending: Vec<PendingJob> = live.into_values().collect();
    pending.sort_by_key(|j| j.seq);
    replay.pending = pending;
    Ok(replay)
}

/// Applies one WAL line to the live-job map.
fn replay_line(
    line: &str,
    live: &mut BTreeMap<String, PendingJob>,
    next_seq: &mut u64,
) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    if v.get("schema").and_then(Value::as_str) != Some(WAL_SCHEMA) {
        return Err(format!("expected schema {WAL_SCHEMA}"));
    }
    let id = v.get("job").and_then(Value::as_str).ok_or("missing `job`")?.to_owned();
    match v.get("event").and_then(Value::as_str) {
        Some("submitted") => {
            let seq = v.get("seq").and_then(Value::as_u64).ok_or("missing `seq`")?;
            let client = v.get("client").and_then(Value::as_str).unwrap_or("anon").to_owned();
            let spec = JobSpec::from_json(v.get("spec").ok_or("missing `spec`")?)
                .map_err(|e| format!("bad spec: {e}"))?;
            *next_seq = (*next_seq).max(seq + 1);
            live.insert(id.clone(), PendingJob { seq, id, client, spec });
        }
        // Progress events carry no recovery state: a crash between
        // `started` and a terminal event re-runs the job, and the trial
        // journal makes the re-run resume where it stopped.
        Some("started") | Some("retrying") => {}
        Some("done") | Some("quarantined") | Some("cancelled") => {
            live.remove(&id);
        }
        Some(other) => return Err(format!("unknown event `{other}`")),
        None => return Err("missing `event`".to_string()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::queue::{submitted_event, terminal_event, JobHandle, JobState};
    use super::*;
    use std::path::PathBuf;

    fn wal_path(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("microsampler-serve-replay-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn missing_wal_is_a_fresh_state() {
        let replay = replay_wal(Path::new("/nonexistent/serve-wal.jsonl")).unwrap();
        assert!(replay.pending.is_empty());
        assert_eq!(replay.next_seq, 0);
    }

    #[test]
    fn unfinished_jobs_survive_and_finished_ones_do_not() {
        let finished = JobHandle::new(0, "ci", JobSpec::default(), false);
        let pending = JobHandle::new(1, "dev", JobSpec { seed: 7, ..JobSpec::default() }, false);
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            submitted_event(&finished).render_compact(),
            submitted_event(&pending).render_compact(),
            super::super::queue::started_event(&finished.id, 1).render_compact(),
            terminal_event(&finished.id, &JobState::Done { leaky: true, verdict: Value::Null })
                .unwrap()
                .render_compact(),
        );
        let path = wal_path("lifecycle");
        std::fs::write(&path, text).unwrap();
        let replay = replay_wal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.next_seq, 2, "sequence resumes past every submission");
        assert_eq!(replay.pending.len(), 1, "only the unfinished job replays");
        let job = &replay.pending[0];
        assert_eq!(job.id, "job-1");
        assert_eq!(job.client, "dev");
        assert_eq!(job.spec.seed, 7);
        assert!(!replay.skipped_torn);
    }

    #[test]
    fn torn_trailing_line_is_skipped_with_a_warning() {
        let job = JobHandle::new(4, "ci", JobSpec::default(), false);
        let full = submitted_event(&job).render_compact();
        let torn = &full[..full.len() / 2];
        let path = wal_path("torn");
        std::fs::write(&path, format!("{full}\n{torn}")).unwrap();
        let replay = replay_wal(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(replay.skipped_torn);
        assert_eq!(replay.pending.len(), 1, "the complete record still replays");
        assert_eq!(replay.next_seq, 5);
    }

    #[test]
    fn torn_line_mid_file_is_corruption() {
        let job = JobHandle::new(0, "ci", JobSpec::default(), false);
        let full = submitted_event(&job).render_compact();
        let torn = &full[..full.len() / 2];
        let path = wal_path("midtorn");
        std::fs::write(&path, format!("{torn}\n{full}\n")).unwrap();
        let got = replay_wal(&path);
        std::fs::remove_file(&path).ok();
        assert!(got.unwrap_err().contains("line 1"));
    }

    #[test]
    fn malformed_records_name_the_line() {
        let cases = [
            ("{\"schema\":\"wrong\",\"event\":\"submitted\",\"job\":\"job-0\"}", "bad schema"),
            (
                "{\"schema\":\"microsampler-serve-job-v1\",\"event\":\"submitted\",\"job\":\"j\"}",
                "missing seq",
            ),
            (
                "{\"schema\":\"microsampler-serve-job-v1\",\"event\":\"warp\",\"job\":\"j\"}",
                "event",
            ),
            ("{\"schema\":\"microsampler-serve-job-v1\",\"job\":\"j\"}", "no event"),
        ];
        for (line, tag) in cases {
            let path = wal_path(tag.split(' ').next().unwrap());
            std::fs::write(&path, format!("{line}\n")).unwrap();
            let got = replay_wal(&path);
            std::fs::remove_file(&path).ok();
            let err = got.expect_err(tag);
            assert!(err.contains("line 1"), "{tag}: {err}");
        }
    }
}
