//! The speculative execution model behind CT-SPEC findings.
//!
//! A conditional branch that architecturally always goes one way still
//! trains a real predictor, and a misprediction fetches, renames, and —
//! until the squash lands — executes the other arm. Secret-dependent
//! loads, stores, branches, or divides on that arm perturb the cache,
//! LDQ/STQ, and predictor exactly like committed ones. This module
//! computes, per instruction, whether it is reachable down such a
//! wrong-path arm within a bounded *speculation window*:
//!
//! * the window opens at every conditional branch on an architecturally
//!   reachable in-region path;
//! * it extends along CFG successor edges for at most
//!   [`SpecModel::depth`] instructions (the ROB bounds how much
//!   wrong-path work can be in flight, so the default derives from
//!   `CoreConfig::rob_entries`);
//! * it is cut by speculation barriers ([`is_speculation_barrier`]):
//!   `fence`, CSR accesses (serializing on BOOM — in particular the
//!   `ITER_END` marker, so windows never escape the sampled region),
//!   and traps.
//!
//! Sites covered by a window but *not* on any architecturally feasible
//! in-region path are transient-only: violations there are reported as
//! CT-SPEC, with the opening branch recorded as the witness.

use crate::cfg::Cfg;
use crate::taint::is_speculation_barrier;
use microsampler_isa::Inst;

/// Bound on how far a transient window extends past a mispredicted
/// branch, in instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecModel {
    /// Maximum wrong-path instructions in flight; 0 disables the
    /// speculative pass entirely.
    pub depth: usize,
}

impl Default for SpecModel {
    /// Defaults to the MegaBoom ROB capacity (paper Table III).
    fn default() -> SpecModel {
        SpecModel { depth: 128 }
    }
}

impl SpecModel {
    /// Derives the window bound from a core configuration: the ROB caps
    /// how many wrong-path instructions can be renamed before the squash.
    pub fn from_config(cfg: &microsampler_sim::CoreConfig) -> SpecModel {
        SpecModel { depth: cfg.rob_entries }
    }

    /// A model with the speculative pass switched off (`--no-spec`).
    pub fn disabled() -> SpecModel {
        SpecModel { depth: 0 }
    }

    /// True when the speculative pass runs.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }
}

/// How one instruction became transiently reachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecOrigin {
    /// Instruction index of the conditional branch whose misprediction
    /// opens the window.
    pub branch_idx: usize,
    /// Wrong-path instructions executed from the branch to this site
    /// (1 = immediately after the branch).
    pub depth: usize,
}

/// Computes the speculative cover: for each instruction, the first
/// (lowest-index) in-region branch whose transient window reaches it.
///
/// Windows open at every conditional branch inside `arch_region` and
/// follow *all* successor edges — the architecturally-taken arm is
/// already covered by `arch_region`, so only dead-arm sites matter to
/// the caller. Propagation is breadth-first per branch (shallowest
/// depth wins for that branch), bounded by `model.depth`, and stops at
/// speculation barriers, which are neither marked nor traversed.
pub fn spec_cover(cfg: &Cfg, arch_region: &[bool], model: SpecModel) -> Vec<Option<SpecOrigin>> {
    let n = cfg.sites.len();
    let mut cover: Vec<Option<SpecOrigin>> = vec![None; n];
    if !model.enabled() {
        return cover;
    }
    for (b, site) in cfg.sites.iter().enumerate() {
        if !arch_region[b] || !matches!(site.inst, Inst::Branch { .. }) {
            continue;
        }
        // BFS from this branch's successors with a per-branch depth map,
        // so a shorter path through a shared block is preferred.
        let mut depth_here: Vec<Option<usize>> = vec![None; n];
        let mut frontier: Vec<usize> = cfg.succs[b].clone();
        let mut depth = 1usize;
        while !frontier.is_empty() && depth <= model.depth {
            let mut next = Vec::new();
            for &i in &frontier {
                if depth_here[i].is_some() || is_speculation_barrier(&cfg.sites[i].inst) {
                    continue;
                }
                depth_here[i] = Some(depth);
                if cover[i].is_none() {
                    cover[i] = Some(SpecOrigin { branch_idx: b, depth });
                }
                next.extend(cfg.succs[i].iter().copied());
            }
            frontier = next;
            depth += 1;
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).unwrap())
    }

    #[test]
    fn window_covers_dead_arm_up_to_the_bound() {
        let c = cfg_of(
            "csrw 0x8c2, zero\nli t0, 1\nbnez t0, live\nli a0, 1\nli a1, 2\nli a2, 3\n\
             live:\ncsrw 0x8c3, zero\necall\n",
        );
        let arch: Vec<bool> = c.in_region.clone();
        let cover = spec_cover(&c, &arch, SpecModel { depth: 2 });
        // bnez is index 2; dead arm starts at index 3.
        assert!(cover[3].is_some(), "first dead-arm instruction inside the window");
        assert_eq!(cover[3].unwrap().depth, 1);
        assert!(cover[4].is_some());
        assert!(cover[5].is_none(), "third dead-arm instruction is past depth 2");
    }

    #[test]
    fn barriers_cut_the_window() {
        let c = cfg_of(
            "csrw 0x8c2, zero\nli t0, 1\nbnez t0, live\nfence\nli a0, 1\n\
             live:\ncsrw 0x8c3, zero\necall\n",
        );
        let cover = spec_cover(&c, &c.in_region.clone(), SpecModel::default());
        let fence = c.sites.iter().position(|s| matches!(s.inst, Inst::Fence)).unwrap();
        assert!(cover[fence].is_none(), "the barrier itself is not transient work");
        assert!(cover[fence + 1].is_none(), "nothing executes past the fence");
    }

    #[test]
    fn disabled_model_covers_nothing() {
        let c = cfg_of("csrw 0x8c2, zero\nli t0, 1\nbnez t0, l\nli a0, 1\nl:\necall\n");
        let cover = spec_cover(&c, &c.in_region.clone(), SpecModel::disabled());
        assert!(cover.iter().all(Option::is_none));
    }
}
