//! Findings and their three output formats: human text, the
//! `microsampler-obs` JSON schema (`microsampler-lint-report-v1`), and
//! SARIF 2.1.0 for CI code scanning.

use microsampler_obs::json::Value;
use microsampler_obs::sarif;
use std::fmt;

/// The statically-checkable leakage channels: the paper's three
/// architectural classes plus the speculative (transient-only) class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationClass {
    /// Class 1: a conditional branch compares secret-tainted data —
    /// control flow, fetch pattern, and predictor state all key on the
    /// secret.
    SecretBranch,
    /// Class 2: a load/store effective address is secret-tainted — cache
    /// sets, TLB entries, MSHRs, and prefetch streams key on the secret.
    SecretAddress,
    /// Class 3: a secret operand reaches a variable-latency multiply or
    /// divide — completion time and unit occupancy key on the secret.
    VariableLatency,
    /// Class 4: a secret-dependent transmitter (tainted branch, address,
    /// or latency operand) reachable *only* down the mispredicted arm of
    /// a conditional branch, within the speculation window — the
    /// Spectre-v1 pattern. The instruction never commits, but its cache,
    /// LDQ, and predictor side effects key on the secret.
    TransientLeak,
}

impl ViolationClass {
    /// Every class, in code order. SARIF rule tables and property tests
    /// iterate this so a new class cannot be forgotten in one renderer.
    pub const ALL: [ViolationClass; 4] = [
        ViolationClass::SecretBranch,
        ViolationClass::SecretAddress,
        ViolationClass::VariableLatency,
        ViolationClass::TransientLeak,
    ];

    /// Numeric class used in reports and fixtures (1, 2, 3, 4).
    pub fn code(self) -> u8 {
        match self {
            ViolationClass::SecretBranch => 1,
            ViolationClass::SecretAddress => 2,
            ViolationClass::VariableLatency => 3,
            ViolationClass::TransientLeak => 4,
        }
    }

    /// Builds the class from its numeric code.
    ///
    /// # Panics
    ///
    /// Panics on codes outside 1..=4.
    pub fn from_code(code: u8) -> ViolationClass {
        match code {
            1 => ViolationClass::SecretBranch,
            2 => ViolationClass::SecretAddress,
            3 => ViolationClass::VariableLatency,
            4 => ViolationClass::TransientLeak,
            _ => panic!("violation class code {code} out of range"),
        }
    }

    /// Stable rule id for SARIF and baselines.
    pub fn rule_id(self) -> &'static str {
        match self {
            ViolationClass::SecretBranch => "CT-BRANCH",
            ViolationClass::SecretAddress => "CT-ADDR",
            ViolationClass::VariableLatency => "CT-LATENCY",
            ViolationClass::TransientLeak => "CT-SPEC",
        }
    }

    /// One-line description of the channel.
    pub fn description(self) -> &'static str {
        match self {
            ViolationClass::SecretBranch => "secret-tainted branch condition",
            ViolationClass::SecretAddress => "secret-tainted load/store address",
            ViolationClass::VariableLatency => "secret operand to variable-latency mul/div",
            ViolationClass::TransientLeak => {
                "secret-dependent transmitter reachable only transiently (Spectre-v1)"
            }
        }
    }

    /// Default severity of the class.
    pub fn severity(self) -> Severity {
        match self {
            // Branches and addresses leak through many structures at once
            // (paper Tables IV/V); latency leaks through one unit.
            // Transient transmitters leak through the same broad surface
            // even though they never commit.
            ViolationClass::SecretBranch
            | ViolationClass::SecretAddress
            | ViolationClass::TransientLeak => Severity::High,
            ViolationClass::VariableLatency => Severity::Medium,
        }
    }
}

/// Finding severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Broad leakage surface.
    High,
    /// Single-channel leakage surface.
    Medium,
}

impl Severity {
    /// Lower-case label used in text/JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::High => "high",
            Severity::Medium => "medium",
        }
    }

    /// SARIF level string.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::High => "error",
            Severity::Medium => "warning",
        }
    }
}

/// How a CT-SPEC finding becomes reachable: the branch whose
/// misprediction opens the transient window that executes the
/// transmitter.
#[derive(Clone, Debug)]
pub struct TransientOrigin {
    /// PC of the mispredicted conditional branch.
    pub branch_pc: u64,
    /// Disassembly of that branch.
    pub branch_disasm: String,
    /// Instructions executed transiently from the branch to the
    /// transmitter (always within the speculation window bound).
    pub depth: usize,
}

/// One constant-time violation found inside the iteration region.
#[derive(Clone, Debug)]
pub struct Violation {
    /// PC of the violating instruction.
    pub pc: u64,
    /// Leakage channel class.
    pub class: ViolationClass,
    /// Severity.
    pub severity: Severity,
    /// Disassembly of the violating instruction.
    pub disasm: String,
    /// Taint chain from source to violation, human-readable.
    pub witness: Vec<String>,
    /// For CT-SPEC findings: the mispredicted branch opening the window.
    pub transient: Option<TransientOrigin>,
}

/// The result of statically analyzing one kernel.
#[derive(Clone, Debug)]
pub struct StaticReport {
    /// Kernel name.
    pub program: String,
    /// Instructions decoded.
    pub insts: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Block transfers until the fixpoint stabilized.
    pub passes: usize,
    /// In-region violations, ordered by PC then class.
    pub violations: Vec<Violation>,
    /// CFG truncations (undecodable words, unresolved indirect jumps).
    pub warnings: Vec<String>,
}

impl StaticReport {
    /// True when any violation was found.
    pub fn is_leaky(&self) -> bool {
        !self.violations.is_empty()
    }

    /// True when any violation on an architecturally-reachable path was
    /// found (classes 1–3).
    pub fn has_architectural_violations(&self) -> bool {
        self.violations.iter().any(|v| v.class != ViolationClass::TransientLeak)
    }

    /// True when the only findings are CT-SPEC (reachable transiently,
    /// never architecturally).
    pub fn is_transient_only(&self) -> bool {
        self.is_leaky() && !self.has_architectural_violations()
    }

    /// True when any CT-SPEC finding exists.
    pub fn has_transient_violations(&self) -> bool {
        self.violations.iter().any(|v| v.class == ViolationClass::TransientLeak)
    }

    /// Static verdict label used in baselines and the cross-validation
    /// table: `clean`, `leaky` (architectural findings), or
    /// `leaky-transient` (CT-SPEC findings only).
    pub fn verdict(&self) -> &'static str {
        if self.is_transient_only() {
            "leaky-transient"
        } else if self.is_leaky() {
            "leaky"
        } else {
            "clean"
        }
    }

    /// The `microsampler-lint-report-v1` JSON document.
    pub fn to_json(&self) -> Value {
        Value::object()
            .field("schema", "microsampler-lint-report-v1")
            .field("program", self.program.as_str())
            .field("verdict", self.verdict())
            .field("insts", self.insts as u64)
            .field("blocks", self.blocks as u64)
            .field("passes", self.passes as u64)
            .field(
                "violations",
                Value::array(self.violations.iter().map(|v| {
                    let mut obj = Value::object()
                        .field("pc", format!("{:#x}", v.pc))
                        .field("class", v.class.code() as u64)
                        .field("rule", v.class.rule_id())
                        .field("severity", v.severity.label())
                        .field("disasm", v.disasm.as_str())
                        .field("witness", Value::array(v.witness.iter().map(String::as_str)));
                    if let Some(t) = &v.transient {
                        obj = obj.field(
                            "transient",
                            Value::object()
                                .field("branch_pc", format!("{:#x}", t.branch_pc))
                                .field("branch", t.branch_disasm.as_str())
                                .field("depth", t.depth as u64)
                                .build(),
                        );
                    }
                    obj.build()
                })),
            )
            .field("warnings", Value::array(self.warnings.iter().map(String::as_str)))
            .build()
    }

    /// SARIF findings for this report (artifact is `<program>.s`; the
    /// line is the 1-based instruction index, the PC is in the message).
    pub fn sarif_findings(&self, text_base: u64) -> Vec<sarif::Finding> {
        self.violations
            .iter()
            .map(|v| sarif::Finding {
                rule_id: v.class.rule_id().to_string(),
                level: v.severity.sarif_level(),
                message: format!(
                    "{} at {:#x}: `{}` ({})",
                    v.class.description(),
                    v.pc,
                    v.disasm,
                    v.witness.join("; "),
                ),
                artifact: format!("{}.s", self.program),
                line: (v.pc.saturating_sub(text_base)) / 4 + 1,
            })
            .collect()
    }
}

/// The SARIF rules, one per violation class (including CT-SPEC).
pub fn sarif_rules() -> Vec<sarif::Rule> {
    ViolationClass::ALL
        .into_iter()
        .map(|c| sarif::Rule {
            id: c.rule_id().to_string(),
            description: c.description().to_string(),
        })
        .collect()
}

/// Renders a complete SARIF document covering several reports.
pub fn sarif_document(reports: &[(&StaticReport, u64)]) -> Value {
    let findings: Vec<sarif::Finding> =
        reports.iter().flat_map(|(r, base)| r.sarif_findings(*base)).collect();
    sarif::document("microsampler-ct", env!("CARGO_PKG_VERSION"), &sarif_rules(), &findings)
}

impl fmt::Display for StaticReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} ({} insts, {} blocks, {} passes)",
            self.program,
            self.verdict(),
            self.insts,
            self.blocks,
            self.passes
        )?;
        for v in &self.violations {
            writeln!(
                f,
                "  [{}] {} at {:#x}: {}",
                v.severity.label(),
                v.class.rule_id(),
                v.pc,
                v.disasm
            )?;
            if let Some(t) = &v.transient {
                writeln!(
                    f,
                    "      reachable only transiently: mispredicted `{}` at {:#x} \
                     ({} transient instructions deep)",
                    t.branch_disasm, t.branch_pc, t.depth
                )?;
            }
            for hop in &v.witness {
                writeln!(f, "      {hop}")?;
            }
        }
        for w in &self.warnings {
            writeln!(f, "  warning: {w}")?;
        }
        Ok(())
    }
}
