//! `microsampler-ct`: static constant-time taint analysis.
//!
//! The dynamic pipeline answers "did this run leak?"; this crate answers
//! "can any run leak?" — a complementary, millisecond-cheap oracle over
//! the same [`microsampler_isa`] programs the simulator executes. It
//! decodes the text section into a CFG ([`mod@cfg`]), runs a forward abstract
//! interpretation to a fixpoint over a constant-propagation + secret-taint
//! lattice ([`taint`]), and reports four violation classes mirroring the
//! paper's leakage channels ([`report`]):
//!
//! 1. **CT-BRANCH** — secret-tainted branch condition,
//! 2. **CT-ADDR** — secret-tainted load/store effective address,
//! 3. **CT-LATENCY** — secret operand to a variable-latency mul/div
//!    (`is_div` always; `mul` under an early-out multiplier,
//!    [`LatencyModel`]),
//! 4. **CT-SPEC** — a transmitter of any of the above reachable *only*
//!    down the mispredicted arm of a conditional branch, within a bounded
//!    speculation window ([`SpecModel`]) — the Spectre-v1 pattern.
//!    `fence` and CSR accesses act as speculation barriers ([`spec`]).
//!
//! Taint sources come from the kernel's
//! [`microsampler_kernels::secrets::SecretSpec`]; findings are scoped to
//! the `ITER_START`/`ITER_END` window the dynamic tracer samples, carry a
//! witness chain, and render as text, `microsampler-lint-report-v1` JSON,
//! or SARIF for CI.
//!
//! # Example
//!
//! ```
//! use microsampler_ct::{analyze_source, LatencyModel};
//! use microsampler_kernels::secrets::SecretSpec;
//!
//! let src = "
//! _start:
//!     csrr a0, 0x8c8
//!     csrw 0x8c2, a0
//!     beqz a0, out        # branch on the secret: CT-BRANCH
//! out:
//!     csrw 0x8c3, zero
//!     ecall
//! ";
//! let report =
//!     analyze_source("demo", src, &SecretSpec::csr_only(), LatencyModel::default())?;
//! assert!(report.is_leaky());
//! assert_eq!(report.violations[0].class.rule_id(), "CT-BRANCH");
//! # Ok::<(), microsampler_isa::asm::AsmError>(())
//! ```

pub mod analyze;
pub mod cfg;
pub mod report;
pub mod spec;
pub mod taint;

pub use analyze::{
    analyze_program, analyze_program_opts, analyze_source, analyze_source_opts, AnalyzeOptions,
};
pub use cfg::Cfg;
pub use report::{
    sarif_document, sarif_rules, Severity, StaticReport, TransientOrigin, Violation, ViolationClass,
};
pub use spec::{SpecModel, SpecOrigin};
pub use taint::{AbsVal, LatencyModel};
