//! The abstract domain: a constant-propagation + secret-taint lattice.
//!
//! Register values live in `Const(v) ⊑ Public ⊑ Secret(w)`:
//!
//! * `Const` — the same concrete value on every path. Needed to resolve
//!   `la` pairs (`auipc`+`addi`), staged buffer pointers, and loop
//!   counters, so that public address arithmetic does not degrade into
//!   false secret-address findings.
//! * `Public` — attacker-observable or attacker-known data; not a leak.
//! * `Secret(w)` — may carry secret bits; `w` indexes the witness table
//!   recording where the taint entered.
//!
//! Memory is a byte-granular shadow of the `.data` section plus a single
//! `other` summary cell for everything else (stack, out-of-image). Joins
//! are pointwise; `Secret` witnesses join by minimum so the fixpoint is
//! deterministic and the chain ends at a stable source.

use microsampler_isa::{Inst, Reg};
use microsampler_sim::interp;

/// Abstract register value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Identical concrete value on all paths reaching this point.
    Const(u64),
    /// Unknown but secret-independent.
    Public,
    /// May depend on a secret; the id indexes the witness table.
    Secret(u32),
}

impl AbsVal {
    /// Least upper bound.
    pub fn join(self, other: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Secret(a), Secret(b)) => Secret(a.min(b)),
            (Secret(w), _) | (_, Secret(w)) => Secret(w),
            (Const(a), Const(b)) if a == b => Const(a),
            (Const(_), Const(_)) | (Const(_), Public) | (Public, Const(_)) | (Public, Public) => {
                Public
            }
        }
    }

    /// Witness id when secret.
    pub fn secret_witness(self) -> Option<u32> {
        match self {
            AbsVal::Secret(w) => Some(w),
            _ => None,
        }
    }
}

/// Taint of one shadow byte (memory keeps no constants, only taint).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemTaint {
    /// Secret-independent contents.
    Public,
    /// May hold secret bits.
    Secret(u32),
}

impl MemTaint {
    fn join(self, other: MemTaint) -> MemTaint {
        match (self, other) {
            (MemTaint::Secret(a), MemTaint::Secret(b)) => MemTaint::Secret(a.min(b)),
            (MemTaint::Secret(w), _) | (_, MemTaint::Secret(w)) => MemTaint::Secret(w),
            _ => MemTaint::Public,
        }
    }

    fn to_abs(self) -> AbsVal {
        match self {
            MemTaint::Public => AbsVal::Public,
            MemTaint::Secret(w) => AbsVal::Secret(w),
        }
    }

    fn of(v: AbsVal) -> MemTaint {
        match v {
            AbsVal::Secret(w) => MemTaint::Secret(w),
            _ => MemTaint::Public,
        }
    }
}

/// Where a taint entered the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// A `csrr` of the input CSR (0x8c8).
    CsrInput,
    /// Initial contents of a declared secret `.data` region.
    Region(&'static str),
    /// A load that touched secret memory.
    Load,
}

/// One taint-source event.
#[derive(Clone, Debug)]
pub struct Witness {
    /// PC of the source instruction (`u64::MAX` for pre-existing region
    /// contents, which have no instruction).
    pub pc: u64,
    /// What kind of source it was.
    pub kind: WitnessKind,
}

/// Abstract machine state at one program point.
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    /// The 31 GPRs plus the pinned `x0 = Const(0)`.
    pub regs: [AbsVal; 32],
    /// Byte-granular taint shadow of the `.data` section.
    pub shadow: Vec<MemTaint>,
    /// Summary taint of all memory outside `.data` (stack, scratch).
    pub other: MemTaint,
}

impl State {
    /// Entry state: `x0` and `sp` pinned, everything else public, shadow
    /// seeded from the resolved secret regions.
    pub fn entry(data_len: usize, secret_ranges: &[(u64, u64, u32)]) -> State {
        let mut regs = [AbsVal::Public; 32];
        regs[Reg::ZERO.index()] = AbsVal::Const(0);
        regs[Reg::SP.index()] = AbsVal::Const(microsampler_isa::STACK_TOP);
        let mut shadow = vec![MemTaint::Public; data_len];
        for &(start, len, witness) in secret_ranges {
            for b in shadow.iter_mut().skip(start as usize).take(len as usize) {
                *b = MemTaint::Secret(witness);
            }
        }
        State { regs, shadow, other: MemTaint::Public }
    }

    /// Pointwise join; returns true when `self` changed.
    pub fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for (a, &b) in self.regs.iter_mut().zip(other.regs.iter()) {
            let j = a.join(b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, &b) in self.shadow.iter_mut().zip(other.shadow.iter()) {
            let j = a.join(b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        let j = self.other.join(other.other);
        if j != self.other {
            self.other = j;
            changed = true;
        }
        changed
    }

    fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn join_data_range(&self, start: i64, size: u64) -> AbsVal {
        let mut acc = AbsVal::Public;
        for i in 0..size as i64 {
            let off = start + i;
            match usize::try_from(off).ok().and_then(|o| self.shadow.get(o)) {
                Some(b) => acc = acc.join(b.to_abs()),
                None => acc = acc.join(self.other.to_abs()),
            }
        }
        acc
    }

    /// All shadow bytes joined with the summary cell — the value of a load
    /// through an unknown public address.
    fn join_all_memory(&self) -> AbsVal {
        let mut acc = self.other.to_abs();
        for b in &self.shadow {
            acc = acc.join(b.to_abs());
        }
        acc
    }

    /// Unknown-address store of a secret: every byte anywhere may now hold
    /// it (conservative havoc). Public-valued unknown stores change
    /// nothing — a may-taint analysis cannot kill taint through an
    /// unresolved address.
    fn havoc(&mut self, taint: MemTaint) {
        if let MemTaint::Secret(_) = taint {
            for b in self.shadow.iter_mut() {
                *b = b.join(taint);
            }
            self.other = self.other.join(taint);
        }
    }
}

/// Which `MulDivOp`s are variable-latency on the analyzed core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyModel {
    /// Divides/remainders are always flagged (iterative unit). Multiplies
    /// are flagged only under an operand-dependent early-out multiplier.
    pub variable_mul: bool,
}

impl LatencyModel {
    /// Derives the model from a core configuration.
    pub fn from_config(cfg: &microsampler_sim::CoreConfig) -> LatencyModel {
        LatencyModel { variable_mul: cfg.mul_early_out }
    }
}

/// A raw violation event produced by the transfer function.
#[derive(Clone, Debug)]
pub struct Event {
    /// Violation class: 1 branch, 2 address, 3 variable-latency operand.
    pub class: u8,
    /// Register carrying the secret into the violating operand.
    pub reg: Reg,
    /// Witness id of that secret.
    pub witness: u32,
}

/// Everything the transfer function needs besides the state.
pub struct Ctx<'a> {
    /// `.data` load address (for concrete-address shadow lookups).
    pub data_base: u64,
    /// Latency model for class-3 checks.
    pub latency: LatencyModel,
    /// Input-CSR reads are secret.
    pub csr_input_secret: bool,
    /// Witness table, grown as sources are encountered.
    pub witnesses: &'a mut Vec<Witness>,
    /// Witness id per instruction index (stable across fixpoint passes).
    pub source_ids: &'a mut std::collections::HashMap<(u64, u8), u32>,
}

impl Ctx<'_> {
    fn witness_at(&mut self, pc: u64, kind: WitnessKind) -> u32 {
        let tag = match kind {
            WitnessKind::CsrInput => 0,
            WitnessKind::Region(_) => 1,
            WitnessKind::Load => 2,
        };
        if let Some(&id) = self.source_ids.get(&(pc, tag)) {
            return id;
        }
        let id = self.witnesses.len() as u32;
        self.witnesses.push(Witness { pc, kind });
        self.source_ids.insert((pc, tag), id);
        id
    }
}

/// Applies one instruction to the state, returning any violation events.
///
/// Events are produced unconditionally; the analyzer filters them by the
/// CFG's iteration region before reporting.
pub fn transfer(inst: &Inst, pc: u64, state: &mut State, ctx: &mut Ctx<'_>) -> Vec<Event> {
    let mut events = Vec::new();
    let check_secret = |class: u8, reg: Reg, v: AbsVal, events: &mut Vec<Event>| {
        if let AbsVal::Secret(w) = v {
            events.push(Event { class, reg, witness: w });
        }
    };
    match *inst {
        Inst::Lui { rd, imm } => state.set(rd, AbsVal::Const(imm as u64)),
        Inst::Auipc { rd, imm } => state.set(rd, AbsVal::Const(pc.wrapping_add(imm as u64))),
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
            state.set(rd, AbsVal::Const(pc.wrapping_add(4)));
        }
        Inst::Branch { .. } => {
            // Both operands feed one condition: report class 1 at most
            // once, preferring rs1's witness.
            let (rs1, rs2) = inst.branch_sources().expect("branch shape");
            let tainted = [(rs1, state.get(rs1)), (rs2, state.get(rs2))]
                .into_iter()
                .find_map(|(r, v)| v.secret_witness().map(|w| (r, w)));
            if let Some((reg, witness)) = tainted {
                events.push(Event { class: 1, reg, witness });
            }
        }
        Inst::Load { op, rd, .. } => {
            let (base, disp) = inst.mem_base().expect("load shape");
            let addr = state.get(base);
            check_secret(2, base, addr, &mut events);
            let value = match addr {
                AbsVal::Const(b) => {
                    let a = b.wrapping_add(disp as u64);
                    let off = a.wrapping_sub(ctx.data_base) as i64;
                    state.join_data_range(off, op.size())
                }
                AbsVal::Public => state.join_all_memory(),
                AbsVal::Secret(_) => {
                    // Through a secret pointer anything may come back.
                    let w = ctx.witness_at(pc, WitnessKind::Load);
                    state.join_all_memory().join(AbsVal::Secret(w))
                }
            };
            state.set(rd, value);
        }
        Inst::Store { rs2, .. } => {
            let (base, disp) = inst.mem_base().expect("store shape");
            let addr = state.get(base);
            check_secret(2, base, addr, &mut events);
            let value = MemTaint::of(state.get(rs2));
            match addr {
                AbsVal::Const(b) => {
                    let a = b.wrapping_add(disp as u64);
                    let size = inst.mem_size().expect("store shape");
                    let off = a.wrapping_sub(ctx.data_base);
                    let mut in_data = false;
                    for i in 0..size {
                        if let Some(byte) = usize::try_from(off.wrapping_add(i))
                            .ok()
                            .and_then(|o| state.shadow.get_mut(o))
                        {
                            // Strong update: a concrete address overwrites
                            // exactly these bytes.
                            *byte = value;
                            in_data = true;
                        }
                    }
                    if !in_data {
                        state.other = state.other.join(value);
                    }
                }
                AbsVal::Public | AbsVal::Secret(_) => state.havoc(value),
            }
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let v = match state.get(rs1) {
                AbsVal::Const(a) => AbsVal::Const(interp::alu(op, a, imm as u64)),
                other => other,
            };
            state.set(rd, v);
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let v = match (state.get(rs1), state.get(rs2)) {
                (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(interp::alu(op, a, b)),
                (a, b) => a.join(b),
            };
            state.set(rd, v);
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            if op.is_div() || ctx.latency.variable_mul {
                check_secret(3, rs1, state.get(rs1), &mut events);
                check_secret(3, rs2, state.get(rs2), &mut events);
                events.dedup_by_key(|e| e.class);
            }
            let v = match (state.get(rs1), state.get(rs2)) {
                (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(interp::muldiv(op, a, b)),
                (a, b) => a.join(b),
            };
            state.set(rd, v);
        }
        Inst::Csr { rd, csr, .. } => {
            let v = if csr == microsampler_isa::CSR_INPUT && ctx.csr_input_secret {
                AbsVal::Secret(ctx.witness_at(pc, WitnessKind::CsrInput))
            } else {
                AbsVal::Public
            };
            state.set(rd, v);
        }
        Inst::Fence => {
            // A fence is a speculation/ordering barrier, not a data
            // operation: it kills no taint (memory contents are
            // unchanged) but it terminates every transient window — the
            // speculative pass treats it via `is_speculation_barrier`.
        }
        Inst::Ecall | Inst::Ebreak => {}
    }
    events
}

/// True for instructions younger wrong-path work cannot pass: `fence`
/// (explicit speculation barrier) and every CSR access (serializing on
/// BOOM — the pipeline drains before a CSR op issues, so no transient
/// instruction survives past one). `ecall`/`ebreak` trap and likewise
/// end speculation.
pub fn is_speculation_barrier(inst: &Inst) -> bool {
    matches!(inst, Inst::Fence | Inst::Csr { .. } | Inst::Ecall | Inst::Ebreak)
}

/// Evaluates a conditional branch's direction when both operands are
/// `Const` in the given state: `Some(taken)` — the branch goes the same
/// way on every architectural path, so the other arm is reachable only
/// through a misprediction. Non-branches and unresolved operands return
/// `None`.
pub fn branch_direction(inst: &Inst, state: &State) -> Option<bool> {
    if let Inst::Branch { op, rs1, rs2, .. } = *inst {
        if let (AbsVal::Const(a), AbsVal::Const(b)) = (state.get(rs1), state.get(rs2)) {
            return Some(interp::branch_taken(op, a, b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_commutative_and_absorbing() {
        use AbsVal::*;
        assert_eq!(Const(3).join(Const(3)), Const(3));
        assert_eq!(Const(3).join(Const(4)), Public);
        assert_eq!(Const(3).join(Secret(2)), Secret(2));
        assert_eq!(Secret(5).join(Secret(2)), Secret(2));
        assert_eq!(Public.join(Public), Public);
    }

    #[test]
    fn havoc_only_spreads_secrets() {
        let mut s = State::entry(4, &[]);
        s.havoc(MemTaint::Public);
        assert!(s.shadow.iter().all(|&b| b == MemTaint::Public));
        s.havoc(MemTaint::Secret(0));
        assert!(s.shadow.iter().all(|&b| b == MemTaint::Secret(0)));
        assert_eq!(s.other, MemTaint::Secret(0));
    }
}
