//! Fixpoint driver: forward abstract interpretation over the CFG.
//!
//! Block-entry states are joined from all predecessors and re-propagated
//! until nothing changes (the lattice has finite height: `Const` can only
//! rise to `Public`/`Secret`, and secret witness ids only fall). The
//! fixpoint deliberately follows *every* CFG edge — including
//! architecturally-dead branch arms — because wrong-path execution runs
//! exactly that code.
//!
//! Reporting is then two-tier. From the stabilized states, branches whose
//! operands are `Const` have a known direction; cutting their dead arms
//! yields the *architectural* iteration region, where violations report
//! under their own class (CT-BRANCH/CT-ADDR/CT-LATENCY). Sites outside
//! that region but inside a bounded speculation window from an in-region
//! branch ([`crate::spec`]) report as CT-SPEC: a transmitter that only a
//! misprediction can execute. Evaluating directions *after* the fixpoint
//! is sound: a stabilized `Const` holds on every path, so the pruned arm
//! is genuinely unreachable architecturally.

use crate::cfg::Cfg;
use crate::report::{StaticReport, TransientOrigin, Violation, ViolationClass};
use crate::spec::{spec_cover, SpecModel, SpecOrigin};
use crate::taint::{branch_direction, Ctx, LatencyModel, State, Witness, WitnessKind};
use microsampler_isa::asm::{assemble, AsmError};
use microsampler_isa::{disassemble, Inst, Program, Reg};
use microsampler_kernels::secrets::SecretSpec;
use std::collections::HashMap;

/// Tuning knobs for one analysis run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Which mul/div latencies are operand-dependent (class 3).
    pub latency: LatencyModel,
    /// Speculation window bound for CT-SPEC (class 4).
    pub spec: SpecModel,
}

/// Runs the static constant-time analysis with the default speculation
/// model (window bound = MegaBoom ROB size).
pub fn analyze_program(
    name: &str,
    program: &Program,
    spec: &SecretSpec,
    latency: LatencyModel,
) -> StaticReport {
    analyze_program_opts(name, program, spec, &AnalyzeOptions { latency, ..Default::default() })
}

/// Runs the static constant-time analysis with explicit options.
pub fn analyze_program_opts(
    name: &str,
    program: &Program,
    spec: &SecretSpec,
    opts: &AnalyzeOptions,
) -> StaticReport {
    let cfg = Cfg::build(program);
    let mut witnesses: Vec<Witness> = Vec::new();
    let mut source_ids: HashMap<(u64, u8), u32> = HashMap::new();

    // Pre-allocate one witness per declared secret region so the shadow
    // map can reference them before any instruction runs.
    let ranges: Vec<(u64, u64, u32)> = spec
        .regions
        .iter()
        .zip(spec.resolve(program))
        .map(|(r, (start, len))| {
            let id = witnesses.len() as u32;
            witnesses.push(Witness { pc: u64::MAX, kind: WitnessKind::Region(r.symbol) });
            (start, len, id)
        })
        .collect();

    let mut ctx = Ctx {
        data_base: program.data_base,
        latency: opts.latency,
        csr_input_secret: spec.csr_input_secret,
        witnesses: &mut witnesses,
        source_ids: &mut source_ids,
    };

    let n_blocks = cfg.blocks.len();
    let mut entry_states: Vec<Option<State>> = vec![None; n_blocks];
    let mut passes = 0usize;
    if let Some(start) = cfg.index_of(program.entry) {
        entry_states[cfg.block_of[start]] = Some(State::entry(program.data.len(), &ranges));
        let mut work: Vec<usize> = vec![cfg.block_of[start]];
        while let Some(b) = work.pop() {
            let Some(mut state) = entry_states[b].clone() else { continue };
            passes += 1;
            for i in cfg.blocks[b].start..cfg.blocks[b].end {
                crate::taint::transfer(&cfg.sites[i].inst, cfg.sites[i].pc, &mut state, &mut ctx);
            }
            for &s in &cfg.blocks[b].succs {
                match &mut entry_states[s] {
                    Some(existing) => {
                        if existing.join_from(&state) {
                            work.push(s);
                        }
                    }
                    None => {
                        entry_states[s] = Some(state.clone());
                        work.push(s);
                    }
                }
            }
        }
    }

    // Direction pass: replay each reached block from its stabilized entry
    // and record the outcome of every `Const`-conditioned branch.
    let n = cfg.sites.len();
    let mut branch_dir: Vec<Option<bool>> = vec![None; n];
    for (b, entry) in entry_states.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut state = entry.clone();
        let span = cfg.blocks[b].start..cfg.blocks[b].end;
        for (dir, site) in branch_dir[span.clone()].iter_mut().zip(&cfg.sites[span]) {
            *dir = branch_direction(&site.inst, &state);
            crate::taint::transfer(&site.inst, site.pc, &mut state, &mut ctx);
        }
    }

    // Architectural region: the iteration window following only feasible
    // edges — a known-direction branch contributes its live arm alone.
    let arch_region = cfg.region_via(|i, t| match branch_dir[i] {
        Some(dir) => {
            let site = &cfg.sites[i];
            let taken = match site.inst {
                Inst::Branch { offset, .. } => cfg.index_of(site.pc.wrapping_add(offset as u64)),
                _ => None,
            };
            if dir {
                Some(t) == taken
            } else {
                t == i + 1
            }
        }
        None => true,
    });

    // Speculative cover: transient windows from every in-region branch.
    let cover = spec_cover(&cfg, &arch_region, opts.spec);

    // Recording pass: replay each reached block once from its stabilized
    // entry state. Events at architecturally-reachable in-region sites
    // report under their own class; events at transient-only covered
    // sites report as CT-SPEC, naming the window-opening branch.
    let mut violations: Vec<Violation> = Vec::new();
    for (b, entry) in entry_states.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut state = entry.clone();
        // Block-local definition sites, for the witness chain.
        let mut def_site: [Option<usize>; 32] = [None; 32];
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            let site = cfg.sites[i];
            let events = crate::taint::transfer(&site.inst, site.pc, &mut state, &mut ctx);
            let transient: Option<SpecOrigin> = match (arch_region[i], cover[i]) {
                (true, _) => None,
                (false, Some(origin)) => Some(origin),
                (false, None) => {
                    // Neither architecturally nor transiently reachable
                    // inside the window: nothing to report here.
                    if let Some(rd) = site.inst.rd() {
                        def_site[rd.index()] = Some(i);
                    }
                    continue;
                }
            };
            for ev in events {
                let class = match transient {
                    Some(_) => ViolationClass::TransientLeak,
                    None => ViolationClass::from_code(ev.class),
                };
                if violations.iter().any(|v| v.pc == site.pc && v.class == class) {
                    continue;
                }
                let mut witness = witness_chain(
                    &cfg,
                    &def_site,
                    ev.reg,
                    ctx.witnesses.get(ev.witness as usize),
                    site.pc,
                    transient.is_some(),
                );
                let origin = transient.map(|o| {
                    let bsite = &cfg.sites[o.branch_idx];
                    let branch_disasm = disassemble(&bsite.inst);
                    witness.insert(
                        0,
                        format!(
                            "transient window opened by mispredicted branch at {:#x}: {} \
                             ({} wrong-path instructions to the transmitter)",
                            bsite.pc, branch_disasm, o.depth
                        ),
                    );
                    TransientOrigin { branch_pc: bsite.pc, branch_disasm, depth: o.depth }
                });
                violations.push(Violation {
                    pc: site.pc,
                    class,
                    severity: class.severity(),
                    disasm: disassemble(&site.inst),
                    witness,
                    transient: origin,
                });
            }
            if let Some(rd) = site.inst.rd() {
                def_site[rd.index()] = Some(i);
            }
        }
    }
    violations.sort_by_key(|v| (v.pc, v.class.code()));

    StaticReport {
        program: name.to_string(),
        insts: cfg.sites.len(),
        blocks: cfg.blocks.len(),
        passes,
        violations,
        warnings: cfg.warnings.clone(),
    }
}

/// Convenience wrapper: assemble then analyze (default speculation
/// model).
///
/// # Errors
///
/// Propagates assembler errors.
pub fn analyze_source(
    name: &str,
    source: &str,
    spec: &SecretSpec,
    latency: LatencyModel,
) -> Result<StaticReport, AsmError> {
    Ok(analyze_program(name, &assemble(source)?, spec, latency))
}

/// Convenience wrapper: assemble then analyze with explicit options.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn analyze_source_opts(
    name: &str,
    source: &str,
    spec: &SecretSpec,
    opts: &AnalyzeOptions,
) -> Result<StaticReport, AsmError> {
    Ok(analyze_program_opts(name, &assemble(source)?, spec, opts))
}

/// Builds the human-readable taint chain for one violation: the source
/// event, the block-local definition of the offending register (when it
/// exists and differs from the source), and the violating instruction.
fn witness_chain(
    cfg: &Cfg,
    def_site: &[Option<usize>; 32],
    reg: Reg,
    witness: Option<&Witness>,
    violation_pc: u64,
    transient: bool,
) -> Vec<String> {
    let mut chain = Vec::new();
    if let Some(w) = witness {
        chain.push(match (&w.kind, w.pc) {
            (WitnessKind::Region(sym), _) => {
                format!("secret seeded in .data region `{sym}`")
            }
            (WitnessKind::CsrInput, pc) => {
                format!("secret read from input CSR at {pc:#x}: {}", disasm_at(cfg, pc))
            }
            (WitnessKind::Load, pc) => {
                format!("secret loaded through tainted pointer at {pc:#x}: {}", disasm_at(cfg, pc))
            }
        });
    }
    if let Some(i) = def_site[reg.index()] {
        let s = cfg.sites[i];
        if s.pc != violation_pc && Some(s.pc) != witness.map(|w| w.pc) {
            chain.push(format!(
                "{} tainted at {:#x}: {}",
                reg.abi_name(),
                s.pc,
                disassemble(&s.inst)
            ));
        }
    }
    let role = if transient { "transient transmitter" } else { "violation" };
    chain.push(format!("{role} at {violation_pc:#x}: {}", disasm_at(cfg, violation_pc)));
    chain
}

fn disasm_at(cfg: &Cfg, pc: u64) -> String {
    cfg.index_of(pc)
        .map(|i| disassemble(&cfg.sites[i].inst))
        .unwrap_or_else(|| "<outside text>".to_string())
}
