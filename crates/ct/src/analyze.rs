//! Fixpoint driver: forward abstract interpretation over the CFG.
//!
//! Block-entry states are joined from all predecessors and re-propagated
//! until nothing changes (the lattice has finite height: `Const` can only
//! rise to `Public`/`Secret`, and secret witness ids only fall). A final
//! recording pass re-runs the transfer function from the stabilized entry
//! states and collects violation events at in-region instructions.

use crate::cfg::Cfg;
use crate::report::{StaticReport, Violation, ViolationClass};
use crate::taint::{Ctx, LatencyModel, State, Witness, WitnessKind};
use microsampler_isa::asm::{assemble, AsmError};
use microsampler_isa::{disassemble, Program, Reg};
use microsampler_kernels::secrets::SecretSpec;
use std::collections::HashMap;

/// Runs the static constant-time analysis on an assembled program.
pub fn analyze_program(
    name: &str,
    program: &Program,
    spec: &SecretSpec,
    latency: LatencyModel,
) -> StaticReport {
    let cfg = Cfg::build(program);
    let mut witnesses: Vec<Witness> = Vec::new();
    let mut source_ids: HashMap<(u64, u8), u32> = HashMap::new();

    // Pre-allocate one witness per declared secret region so the shadow
    // map can reference them before any instruction runs.
    let ranges: Vec<(u64, u64, u32)> = spec
        .regions
        .iter()
        .zip(spec.resolve(program))
        .map(|(r, (start, len))| {
            let id = witnesses.len() as u32;
            witnesses.push(Witness { pc: u64::MAX, kind: WitnessKind::Region(r.symbol) });
            (start, len, id)
        })
        .collect();

    let mut ctx = Ctx {
        data_base: program.data_base,
        latency,
        csr_input_secret: spec.csr_input_secret,
        witnesses: &mut witnesses,
        source_ids: &mut source_ids,
    };

    let n_blocks = cfg.blocks.len();
    let mut entry_states: Vec<Option<State>> = vec![None; n_blocks];
    let mut passes = 0usize;
    if let Some(start) = cfg.index_of(program.entry) {
        entry_states[cfg.block_of[start]] = Some(State::entry(program.data.len(), &ranges));
        let mut work: Vec<usize> = vec![cfg.block_of[start]];
        while let Some(b) = work.pop() {
            let Some(mut state) = entry_states[b].clone() else { continue };
            passes += 1;
            for i in cfg.blocks[b].start..cfg.blocks[b].end {
                crate::taint::transfer(&cfg.sites[i].inst, cfg.sites[i].pc, &mut state, &mut ctx);
            }
            for &s in &cfg.blocks[b].succs {
                match &mut entry_states[s] {
                    Some(existing) => {
                        if existing.join_from(&state) {
                            work.push(s);
                        }
                    }
                    None => {
                        entry_states[s] = Some(state.clone());
                        work.push(s);
                    }
                }
            }
        }
    }

    // Recording pass: replay each reached block once from its stabilized
    // entry state; report events only at in-region sites.
    let mut violations: Vec<Violation> = Vec::new();
    for (b, entry) in entry_states.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut state = entry.clone();
        // Block-local definition sites, for the witness chain.
        let mut def_site: [Option<usize>; 32] = [None; 32];
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            let site = cfg.sites[i];
            let events = crate::taint::transfer(&site.inst, site.pc, &mut state, &mut ctx);
            if cfg.in_region[i] {
                for ev in events {
                    let class = ViolationClass::from_code(ev.class);
                    if violations.iter().any(|v| v.pc == site.pc && v.class == class) {
                        continue;
                    }
                    let witness = witness_chain(
                        &cfg,
                        &def_site,
                        ev.reg,
                        ctx.witnesses.get(ev.witness as usize),
                        site.pc,
                    );
                    violations.push(Violation {
                        pc: site.pc,
                        class,
                        severity: class.severity(),
                        disasm: disassemble(&site.inst),
                        witness,
                    });
                }
            }
            if let Some(rd) = site.inst.rd() {
                def_site[rd.index()] = Some(i);
            }
        }
    }
    violations.sort_by_key(|v| (v.pc, v.class.code()));

    StaticReport {
        program: name.to_string(),
        insts: cfg.sites.len(),
        blocks: cfg.blocks.len(),
        passes,
        violations,
        warnings: cfg.warnings.clone(),
    }
}

/// Convenience wrapper: assemble then analyze.
///
/// # Errors
///
/// Propagates assembler errors.
pub fn analyze_source(
    name: &str,
    source: &str,
    spec: &SecretSpec,
    latency: LatencyModel,
) -> Result<StaticReport, AsmError> {
    Ok(analyze_program(name, &assemble(source)?, spec, latency))
}

/// Builds the human-readable taint chain for one violation: the source
/// event, the block-local definition of the offending register (when it
/// exists and differs from the source), and the violating instruction.
fn witness_chain(
    cfg: &Cfg,
    def_site: &[Option<usize>; 32],
    reg: Reg,
    witness: Option<&Witness>,
    violation_pc: u64,
) -> Vec<String> {
    let mut chain = Vec::new();
    if let Some(w) = witness {
        chain.push(match (&w.kind, w.pc) {
            (WitnessKind::Region(sym), _) => {
                format!("secret seeded in .data region `{sym}`")
            }
            (WitnessKind::CsrInput, pc) => {
                format!("secret read from input CSR at {pc:#x}: {}", disasm_at(cfg, pc))
            }
            (WitnessKind::Load, pc) => {
                format!("secret loaded through tainted pointer at {pc:#x}: {}", disasm_at(cfg, pc))
            }
        });
    }
    if let Some(i) = def_site[reg.index()] {
        let s = cfg.sites[i];
        if s.pc != violation_pc && Some(s.pc) != witness.map(|w| w.pc) {
            chain.push(format!(
                "{} tainted at {:#x}: {}",
                reg.abi_name(),
                s.pc,
                disassemble(&s.inst)
            ));
        }
    }
    chain.push(format!("violation at {violation_pc:#x}: {}", disasm_at(cfg, violation_pc)));
    chain
}

fn disasm_at(cfg: &Cfg, pc: u64) -> String {
    cfg.index_of(pc)
        .map(|i| disassemble(&cfg.sites[i].inst))
        .unwrap_or_else(|| "<outside text>".to_string())
}
