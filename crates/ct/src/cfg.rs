//! Control-flow graph over a decoded `.text` section.
//!
//! Instructions are decoded once into a linear array; basic blocks are
//! computed with the classic leader algorithm. Successors follow both
//! arms of conditional branches, `jal` targets, and — for return-shaped
//! `jalr` — a static return-address-stack pairing: a `ret` flows to the
//! return points of every call site that targets the function containing
//! it (function entries are the set of direct-call targets plus the
//! program entry).
//!
//! The CFG also computes the *iteration region*: the instructions
//! reachable from an `ITER_START` marker without crossing an `ITER_END`.
//! Only findings inside this region are reported — it is exactly the
//! window the dynamic tracer samples, and it excludes driver control flow
//! (e.g. the trial-count branch) that handles secret-derived bookkeeping
//! outside the measured window.

use microsampler_isa::{CsrOp, Inst, Program, CSR_ITER_END, CSR_ITER_START};

/// One decoded instruction with its address.
#[derive(Clone, Copy, Debug)]
pub struct Site {
    /// Virtual address.
    pub pc: u64,
    /// Decoded instruction.
    pub inst: Inst,
}

/// A basic block: a contiguous run of instruction indices.
#[derive(Clone, Debug)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of a program's text section.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Decoded instructions in address order.
    pub sites: Vec<Site>,
    /// Basic blocks in address order.
    pub blocks: Vec<Block>,
    /// `in_region[i]` — instruction `i` lies between `ITER_START` and
    /// `ITER_END` on some path.
    pub in_region: Vec<bool>,
    /// Block index containing each instruction.
    pub block_of: Vec<usize>,
    /// Per-instruction successor indices (both branch arms, jump targets,
    /// static return pairings) — the edge set the speculation-window
    /// search and the feasible-path region recomputation walk.
    pub succs: Vec<Vec<usize>>,
    /// Undecodable words or indirect jumps the CFG had to truncate at.
    pub warnings: Vec<String>,
}

fn is_iter_start(inst: &Inst) -> bool {
    matches!(inst, Inst::Csr { op: CsrOp::Rw, csr, .. } if *csr == CSR_ITER_START)
}

fn is_iter_end(inst: &Inst) -> bool {
    matches!(inst, Inst::Csr { op: CsrOp::Rw, csr, .. } if *csr == CSR_ITER_END)
}

impl Cfg {
    /// Builds the CFG for a program.
    pub fn build(program: &Program) -> Cfg {
        let mut sites = Vec::with_capacity(program.inst_count());
        let mut warnings = Vec::new();
        for i in 0..program.inst_count() {
            let pc = program.text_base + 4 * i as u64;
            match program.inst_at(pc) {
                Some(inst) => sites.push(Site { pc, inst }),
                None => {
                    warnings.push(format!("undecodable word at {pc:#x}; CFG truncated"));
                    break;
                }
            }
        }
        let n = sites.len();
        let index_of = |pc: u64| -> Option<usize> {
            let off = pc.checked_sub(program.text_base)? / 4;
            ((off as usize) < n && pc.is_multiple_of(4)).then_some(off as usize)
        };

        // Function entries: direct-call targets plus the program entry.
        // A return-shaped jalr belongs to the innermost preceding entry and
        // flows back to that function's call sites.
        let mut entries: Vec<usize> = index_of(program.entry).into_iter().collect();
        let mut call_sites: Vec<(usize, usize)> = Vec::new(); // (site, target)
        for (i, s) in sites.iter().enumerate() {
            if let Inst::Jal { offset, .. } = s.inst {
                if s.inst.is_call() {
                    if let Some(t) = index_of(s.pc.wrapping_add(offset as u64)) {
                        entries.push(t);
                        call_sites.push((i, t));
                    }
                }
            }
        }
        entries.sort_unstable();
        entries.dedup();
        let function_of =
            |i: usize| -> Option<usize> { entries.iter().rev().find(|&&e| e <= i).copied() };

        // Per-instruction successors.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, s) in sites.iter().enumerate() {
            match s.inst {
                Inst::Branch { offset, .. } => {
                    if let Some(t) = index_of(s.pc.wrapping_add(offset as u64)) {
                        succs[i].push(t);
                    }
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                }
                Inst::Jal { offset, .. } => {
                    if let Some(t) = index_of(s.pc.wrapping_add(offset as u64)) {
                        succs[i].push(t);
                    }
                }
                Inst::Jalr { .. } if s.inst.is_return() => {
                    let me = function_of(i);
                    for &(site, target) in &call_sites {
                        if Some(target) == me && site + 1 < n {
                            succs[i].push(site + 1);
                        }
                    }
                }
                Inst::Jalr { .. } => {
                    // Computed jump with no static target: the analysis
                    // stops here on this path.
                    warnings.push(format!("unresolved indirect jump at {:#x}", s.pc));
                }
                Inst::Ecall | Inst::Ebreak => {}
                _ => {
                    if i + 1 < n {
                        succs[i].push(i + 1);
                    }
                }
            }
        }

        // Leaders: entry points, jump/branch targets, and fall-throughs of
        // control transfers.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for &e in &entries {
            leader[e] = true;
        }
        for (i, s) in sites.iter().enumerate() {
            if s.inst.is_control_flow() || matches!(s.inst, Inst::Ecall | Inst::Ebreak) {
                for &t in &succs[i] {
                    leader[t] = true;
                }
                if i + 1 < n {
                    leader[i + 1] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for i in 0..n {
            block_of[i] = blocks.len();
            let last = i + 1 == n || leader[i + 1];
            if last {
                blocks.push(Block { start, end: i + 1, succs: Vec::new() });
                start = i + 1;
            }
        }
        for block in &mut blocks {
            let tail = block.end - 1;
            let mut bs: Vec<usize> = succs[tail].iter().map(|&t| block_of[t]).collect();
            bs.sort_unstable();
            bs.dedup();
            block.succs = bs;
        }

        // Iteration region: forward reachability from ITER_START markers,
        // cut at ITER_END markers (the markers themselves are excluded).
        let mut in_region = vec![false; n];
        let mut work: Vec<usize> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| is_iter_start(&s.inst))
            .flat_map(|(i, _)| succs[i].clone())
            .collect();
        while let Some(i) = work.pop() {
            if in_region[i] || is_iter_end(&sites[i].inst) {
                continue;
            }
            in_region[i] = true;
            work.extend(succs[i].iter().copied());
        }

        Cfg { sites, blocks, in_region, block_of, succs, warnings }
    }

    /// Recomputes the iteration region following only the edges
    /// `feasible` accepts. `in_region` follows every edge; once branch
    /// directions are known from the stabilized fixpoint states, cutting
    /// the architecturally-dead arms yields the *architectural* region,
    /// and the difference against the speculative window marks
    /// transient-only sites.
    pub fn region_via(&self, feasible: impl Fn(usize, usize) -> bool) -> Vec<bool> {
        let mut in_region = vec![false; self.sites.len()];
        let mut work: Vec<usize> = Vec::new();
        for (i, s) in self.sites.iter().enumerate() {
            if is_iter_start(&s.inst) {
                work.extend(self.succs[i].iter().copied().filter(|&t| feasible(i, t)));
            }
        }
        while let Some(i) = work.pop() {
            if in_region[i] || is_iter_end(&self.sites[i].inst) {
                continue;
            }
            in_region[i] = true;
            work.extend(self.succs[i].iter().copied().filter(|&t| feasible(i, t)));
        }
        in_region
    }

    /// Instruction index for a text address.
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        let base = self.sites.first()?.pc;
        let off = pc.checked_sub(base)? / 4;
        ((off as usize) < self.sites.len()).then_some(off as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsampler_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).unwrap())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("li a0, 1\nli a1, 2\nadd a0, a0, a1\necall\n");
        assert_eq!(c.blocks.len(), 1);
        assert!(c.blocks[0].succs.is_empty());
        assert!(c.warnings.is_empty());
    }

    #[test]
    fn branch_splits_blocks_with_both_arms() {
        let c = cfg_of("beqz a0, skip\nli a1, 1\nskip:\nli a2, 2\necall\n");
        assert_eq!(c.blocks.len(), 3);
        assert_eq!(c.blocks[0].succs, vec![1, 2]);
        assert_eq!(c.blocks[1].succs, vec![2]);
    }

    #[test]
    fn call_return_pairs_back_to_the_call_site() {
        let c = cfg_of("call f\nli a1, 7\necall\nf:\nli a0, 3\nret\n");
        // The ret block's successor is the block holding `li a1, 7`.
        let ret_idx = c.sites.iter().position(|s| s.inst.is_return()).unwrap();
        let ret_block =
            c.blocks.iter().position(|b| b.start <= ret_idx && ret_idx < b.end).unwrap();
        let succ = c.blocks[ret_block].succs[0];
        assert_eq!(c.blocks[succ].start, 1); // instruction after the call
    }

    #[test]
    fn region_marking_tracks_iter_markers() {
        let c = cfg_of(
            "csrr s0, 0x8c8\nbeqz s0, out\ncsrw 0x8c2, s0\nadd a0, a0, a1\n\
             csrw 0x8c3, zero\nj end\nout:\nli a0, 0\nend:\necall\n",
        );
        let marked: Vec<u64> = c
            .sites
            .iter()
            .enumerate()
            .filter(|&(i, _)| c.in_region[i])
            .map(|(_, s)| s.pc - c.sites[0].pc)
            .collect();
        // Only the `add` between the markers is in-region (offset 12: after
        // csrr, beqz, csrw).
        assert_eq!(marked, vec![12]);
    }
}
