//! The static analyzer's acceptance contract: every Table V primitive is
//! clean, every seeded-leaky fixture is flagged with the right class at
//! the right PC.

use microsampler_ct::{analyze_source, LatencyModel, ViolationClass};
use microsampler_isa::asm::assemble;
use microsampler_kernels::{fixtures, openssl::Primitive, secrets::SecretSpec};

#[test]
fn all_table5_primitives_are_statically_clean() {
    for p in Primitive::all() {
        let report = analyze_source(p.name, &p.source(), &p.secret_spec(), LatencyModel::default())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(!report.is_leaky(), "{} should be clean, found:\n{report}", p.name);
        assert!(report.warnings.is_empty(), "{}: {:?}", p.name, report.warnings);
    }
}

#[test]
fn seeded_leaky_fixtures_flag_with_correct_class_and_pc() {
    for f in fixtures::all() {
        let program = assemble(f.source).unwrap();
        let report =
            microsampler_ct::analyze_program(f.name, &program, &f.spec, LatencyModel::default());
        assert!(report.is_leaky(), "{} must be flagged", f.name);
        let v = report
            .violations
            .iter()
            .find(|v| v.class == ViolationClass::from_code(f.expected_class))
            .unwrap_or_else(|| {
                panic!("{}: no class-{} violation in\n{report}", f.name, f.expected_class)
            });
        // The reported PC must disassemble to the seeded instruction.
        assert!(
            v.disasm.starts_with(f.expected_mnemonic),
            "{}: violation at {:#x} is `{}`, expected a `{}`",
            f.name,
            v.pc,
            v.disasm,
            f.expected_mnemonic
        );
        assert!(!v.witness.is_empty(), "{}: witness chain empty", f.name);
    }
}

#[test]
fn early_out_multiplier_extends_class3_to_mul() {
    let f = fixtures::by_name("leaky_modexp_divisor").unwrap();
    let constant = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
    assert!(
        !constant.violations.iter().any(|v| v.disasm.starts_with("mul")),
        "pipelined multiplier must not flag mul"
    );
    let early_out =
        analyze_source(f.name, f.source, &f.spec, LatencyModel { variable_mul: true }).unwrap();
    assert!(
        early_out
            .violations
            .iter()
            .any(|v| { v.class == ViolationClass::VariableLatency && v.disasm.starts_with("mul") }),
        "early-out multiplier must flag the secret-fed mul:\n{early_out}"
    );
}

#[test]
fn violations_outside_the_iteration_region_are_not_reported() {
    // The same secret-tainted branch, but after ITER_END: driver
    // bookkeeping the tracer never samples.
    let src = "
_start:
    csrr a0, 0x8c8
    csrw 0x8c2, a0
    add  a1, a0, a0
    csrw 0x8c3, zero
    beqz a0, out
    li   a2, 1
out:
    ecall
";
    let report =
        analyze_source("post-region", src, &SecretSpec::csr_only(), LatencyModel::default())
            .unwrap();
    assert!(!report.is_leaky(), "{report}");
}

#[test]
fn report_renders_json_and_sarif() {
    let f = fixtures::by_name("leaky_branchy_memcmp").unwrap();
    let report = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
    let json = report.to_json();
    assert_eq!(json.get("schema").and_then(|v| v.as_str()), Some("microsampler-lint-report-v1"));
    assert_eq!(json.get("verdict").and_then(|v| v.as_str()), Some("leaky"));
    let program = assemble(f.source).unwrap();
    let doc = microsampler_ct::sarif_document(&[(&report, program.text_base)]);
    let text = doc.render_pretty();
    assert!(text.contains("CT-BRANCH"));
    assert!(microsampler_obs::json::parse(&text).is_ok());
}
