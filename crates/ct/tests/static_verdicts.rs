//! The static analyzer's acceptance contract: every Table V primitive is
//! clean, every seeded-leaky fixture is flagged with the right class at
//! the right PC.

use microsampler_ct::{
    analyze_source, analyze_source_opts, AnalyzeOptions, LatencyModel, SpecModel, ViolationClass,
};
use microsampler_isa::asm::assemble;
use microsampler_kernels::{fixtures, openssl::Primitive, secrets::SecretSpec};

#[test]
fn all_table5_primitives_are_statically_clean() {
    for p in Primitive::all() {
        let report = analyze_source(p.name, &p.source(), &p.secret_spec(), LatencyModel::default())
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(!report.is_leaky(), "{} should be clean, found:\n{report}", p.name);
        assert!(report.warnings.is_empty(), "{}: {:?}", p.name, report.warnings);
    }
}

#[test]
fn seeded_leaky_fixtures_flag_with_correct_class_and_pc() {
    for f in fixtures::all() {
        let program = assemble(f.source).unwrap();
        let report =
            microsampler_ct::analyze_program(f.name, &program, &f.spec, LatencyModel::default());
        assert!(report.is_leaky(), "{} must be flagged", f.name);
        // A class-4 fixture may carry several CT-SPEC transmitters (a
        // transient branch *and* a transient store); the expected mnemonic
        // pins the one the fixture is named for.
        let v = report
            .violations
            .iter()
            .find(|v| {
                v.class == ViolationClass::from_code(f.expected_class)
                    && v.disasm.starts_with(f.expected_mnemonic)
            })
            .unwrap_or_else(|| {
                panic!(
                    "{}: no class-{} `{}` violation in\n{report}",
                    f.name, f.expected_class, f.expected_mnemonic
                )
            });
        assert!(!v.witness.is_empty(), "{}: witness chain empty", f.name);
        if f.expected_class == 4 {
            // CT-SPEC findings must name the mispredicted branch that
            // opens the transient window.
            let t = v.transient.as_ref().unwrap_or_else(|| {
                panic!("{}: CT-SPEC violation missing transient origin", f.name)
            });
            assert!(
                t.branch_disasm.starts_with("bnez") || t.branch_disasm.starts_with("bne"),
                "{}: transient origin is `{}`, expected the guard branch",
                f.name,
                t.branch_disasm
            );
            assert!(t.depth >= 1, "{}: transient depth {}", f.name, t.depth);
            assert!(
                v.witness[0].contains("mispredicted"),
                "{}: witness must open with the mispredicted branch:\n{}",
                f.name,
                v.witness.join("\n")
            );
        } else {
            assert!(
                v.transient.is_none(),
                "{}: architectural finding carries a transient origin",
                f.name
            );
        }
    }
}

#[test]
fn spectre_fixtures_are_transient_only() {
    // Architecturally the Spectre gadgets are constant time: with
    // speculation modeling off (or a zero-depth window) they must be
    // verdict-clean, and with it on they must be leaky-transient, never
    // architecturally leaky.
    for name in ["leaky_spectre_bounds", "leaky_spectre_store"] {
        let f = fixtures::by_name(name).unwrap();
        let on = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
        assert!(on.is_transient_only(), "{name} with speculation on:\n{on}");
        assert_eq!(on.verdict(), "leaky-transient", "{name}");
        let off = analyze_source_opts(
            f.name,
            f.source,
            &f.spec,
            &AnalyzeOptions { spec: SpecModel::disabled(), ..Default::default() },
        )
        .unwrap();
        assert!(!off.is_leaky(), "{name} with speculation off:\n{off}");
    }
}

#[test]
fn spec_depth_bound_gates_the_transient_window() {
    // The bounds gadget's transmitter sits a handful of wrong-path
    // instructions past the guard: a window shallower than that distance
    // must not reach it, the default (ROB-sized) window must.
    let f = fixtures::by_name("leaky_spectre_bounds").unwrap();
    let shallow = analyze_source_opts(
        f.name,
        f.source,
        &f.spec,
        &AnalyzeOptions { spec: SpecModel { depth: 2 }, ..Default::default() },
    )
    .unwrap();
    assert!(!shallow.is_leaky(), "depth-2 window must not reach the lbu:\n{shallow}");
    let deep = analyze_source_opts(
        f.name,
        f.source,
        &f.spec,
        &AnalyzeOptions { spec: SpecModel { depth: 4 }, ..Default::default() },
    )
    .unwrap();
    assert!(deep.is_transient_only(), "depth-4 window must reach the lbu:\n{deep}");
}

#[test]
fn fence_after_the_guard_downgrades_ct_spec_to_clean() {
    // The same bounds gadget with a `fence` at the top of the wrong-path
    // arm: the speculation barrier cuts the window before the transmitter,
    // so the fenced variant is clean while the original is not.
    let f = fixtures::by_name("leaky_spectre_bounds").unwrap();
    let fenced = f.source.replace(
        "    andi t2, s1, 63         # -- transient (wrong-path) arm --",
        "    fence\n    andi t2, s1, 63",
    );
    assert_ne!(fenced, f.source, "fixture text changed; update the fence splice");
    let original = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
    assert!(original.has_transient_violations(), "{original}");
    let report =
        analyze_source("fenced_spectre", &fenced, &f.spec, LatencyModel::default()).unwrap();
    assert!(!report.is_leaky(), "fence must act as a speculation barrier:\n{report}");
    assert_eq!(report.verdict(), "clean");
}

#[test]
fn early_out_multiplier_extends_class3_to_mul() {
    let f = fixtures::by_name("leaky_modexp_divisor").unwrap();
    let constant = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
    assert!(
        !constant.violations.iter().any(|v| v.disasm.starts_with("mul")),
        "pipelined multiplier must not flag mul"
    );
    let early_out =
        analyze_source(f.name, f.source, &f.spec, LatencyModel { variable_mul: true }).unwrap();
    assert!(
        early_out
            .violations
            .iter()
            .any(|v| { v.class == ViolationClass::VariableLatency && v.disasm.starts_with("mul") }),
        "early-out multiplier must flag the secret-fed mul:\n{early_out}"
    );
}

#[test]
fn violations_outside_the_iteration_region_are_not_reported() {
    // The same secret-tainted branch, but after ITER_END: driver
    // bookkeeping the tracer never samples.
    let src = "
_start:
    csrr a0, 0x8c8
    csrw 0x8c2, a0
    add  a1, a0, a0
    csrw 0x8c3, zero
    beqz a0, out
    li   a2, 1
out:
    ecall
";
    let report =
        analyze_source("post-region", src, &SecretSpec::csr_only(), LatencyModel::default())
            .unwrap();
    assert!(!report.is_leaky(), "{report}");
}

#[test]
fn report_renders_json_and_sarif() {
    let f = fixtures::by_name("leaky_branchy_memcmp").unwrap();
    let report = analyze_source(f.name, f.source, &f.spec, LatencyModel::default()).unwrap();
    let json = report.to_json();
    assert_eq!(json.get("schema").and_then(|v| v.as_str()), Some("microsampler-lint-report-v1"));
    assert_eq!(json.get("verdict").and_then(|v| v.as_str()), Some("leaky"));
    let program = assemble(f.source).unwrap();
    let doc = microsampler_ct::sarif_document(&[(&report, program.text_base)]);
    let text = doc.render_pretty();
    assert!(text.contains("CT-BRANCH"));
    assert!(microsampler_obs::json::parse(&text).is_ok());
}
