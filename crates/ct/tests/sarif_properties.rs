//! Renderer invariants, property-tested over arbitrary report subsets:
//! every SARIF document carries exactly one rule per violation class
//! (CT-SPEC included), every emitted `ruleId` resolves against that rule
//! table, and the lint JSON schema round-trips through `obs::json`.

use microsampler_ct::{
    analyze_program, sarif_document, LatencyModel, StaticReport, ViolationClass,
};
use microsampler_isa::asm::assemble;
use microsampler_kernels::{fixtures, openssl::Primitive};
use microsampler_obs::json;
use proptest::prelude::*;

/// Analyzes every fixture (gate self-test included) plus a few clean
/// Table V primitives: a pool mixing all four violation classes with
/// zero-finding reports.
fn report_pool() -> Vec<(StaticReport, u64)> {
    let mut pool = Vec::new();
    for f in fixtures::all().into_iter().chain(std::iter::once(fixtures::gate_selftest())) {
        let program = assemble(f.source).unwrap();
        let base = program.text_base;
        pool.push((analyze_program(f.name, &program, &f.spec, LatencyModel::default()), base));
    }
    for p in Primitive::all().into_iter().take(3) {
        let program = assemble(&p.source()).unwrap();
        let base = program.text_base;
        pool.push((
            analyze_program(p.name, &program, &p.secret_spec(), LatencyModel::default()),
            base,
        ));
    }
    pool
}

fn sarif_for(indices: &[usize]) -> json::Value {
    let pool = report_pool();
    let subset: Vec<(&StaticReport, u64)> =
        indices.iter().map(|&i| (&pool[i % pool.len()].0, pool[i % pool.len()].1)).collect();
    sarif_document(&subset)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_sarif_doc_has_one_rule_per_class(indices in prop::collection::vec(0usize..16, 0..6)) {
        let doc = sarif_for(&indices);
        let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
        let rules = runs[0]
            .get("tool")
            .and_then(|v| v.get("driver"))
            .and_then(|v| v.get("rules"))
            .and_then(|v| v.as_array())
            .unwrap();
        let ids: Vec<&str> = rules.iter().filter_map(|r| r.get("id")?.as_str()).collect();
        prop_assert_eq!(ids.len(), ViolationClass::ALL.len());
        for c in ViolationClass::ALL {
            prop_assert_eq!(
                ids.iter().filter(|&&id| id == c.rule_id()).count(),
                1,
                "rule {} must appear exactly once",
                c.rule_id()
            );
        }
    }

    #[test]
    fn every_result_rule_id_resolves(indices in prop::collection::vec(0usize..16, 0..6)) {
        let doc = sarif_for(&indices);
        let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
        let rules = runs[0]
            .get("tool")
            .and_then(|v| v.get("driver"))
            .and_then(|v| v.get("rules"))
            .and_then(|v| v.as_array())
            .unwrap();
        let ids: Vec<&str> = rules.iter().filter_map(|r| r.get("id")?.as_str()).collect();
        let results = runs[0].get("results").and_then(|v| v.as_array()).unwrap();
        for r in results {
            let rule_id = r.get("ruleId").and_then(|v| v.as_str()).unwrap();
            prop_assert!(ids.contains(&rule_id), "unresolvable ruleId {}", rule_id);
        }
    }

    #[test]
    fn lint_json_round_trips_through_obs_json(indices in prop::collection::vec(0usize..16, 1..4)) {
        let pool = report_pool();
        for &i in &indices {
            let (report, _) = &pool[i % pool.len()];
            let value = report.to_json();
            for rendered in [value.render_pretty(), value.render_compact()] {
                let parsed = json::parse(&rendered).unwrap();
                prop_assert_eq!(&parsed, &value, "round-trip changed {}", report.program);
            }
        }
    }
}

#[test]
fn spectre_findings_reach_sarif_as_ct_spec() {
    let pool = report_pool();
    let subset: Vec<(&StaticReport, u64)> = pool.iter().map(|(r, b)| (r, *b)).collect();
    let doc = sarif_document(&subset);
    let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
    let results = runs[0].get("results").and_then(|v| v.as_array()).unwrap();
    let spec_results =
        results.iter().filter(|r| r.get("ruleId").and_then(|v| v.as_str()) == Some("CT-SPEC"));
    assert!(spec_results.count() >= 2, "both Spectre fixtures must emit CT-SPEC results");
}
