//! Dependency-free data-parallel execution for the MicroSampler pipeline.
//!
//! The paper's workload is dominated by embarrassingly parallel work:
//! independent simulated trials (per key, per primitive, per escalation
//! round), per-unit snapshot-hash folding, and per-unit statistical
//! analysis. This crate provides the one primitive all three layers share:
//! a scoped `std::thread` worker pool ([`map`] / [`map_mut`]) with
//!
//! * a chunked work-stealing queue (workers grab index ranges from a shared
//!   atomic cursor, so uneven task costs still balance),
//! * **deterministic result ordering** — results are returned in input
//!   order regardless of which worker computed them or when,
//! * panic propagation — a panicking task panics the caller after all
//!   workers have been joined (no orphaned threads, no swallowed errors),
//! * nesting protection — a [`map`] issued from inside a worker runs
//!   serially inline, so parallel harness loops can call parallel library
//!   code without spawning `workers²` threads,
//! * telemetry integration — `par.tasks` / `par.workers` / `par.steal`
//!   metrics per pool run, and spans recorded on worker threads re-attached
//!   under the caller's open span (each worker's busy time shows up as a
//!   `par.worker` node),
//! * fault tolerance — [`map_isolated`] wraps each task in a panic
//!   boundary with a bounded retry policy ([`IsolationPolicy`]), so one
//!   wedged or panicking trial is quarantined as a [`TrialOutcome`]
//!   instead of sinking the whole sweep.
//!
//! # Thread-count resolution
//!
//! [`threads`] resolves, in priority order: the process-wide programmatic
//! override ([`set_threads`], used by `repro --threads N`), the
//! `MICROSAMPLER_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. Invalid environment values (zero
//! or non-numeric) are diagnosed and ignored; absurd values (above
//! [`MAX_THREADS`]) are clamped to the machine's available parallelism.
//!
//! Determinism is a hard guarantee, not a configuration: any computation
//! built from pure per-item functions produces bit-identical results at
//! every thread count, enforced by the workspace's determinism tests.
//!
//! # Example
//!
//! ```
//! microsampler_par::set_threads(Some(4));
//! let squares = microsampler_par::map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! microsampler_par::set_threads(None);
//! ```

use microsampler_obs::{diag_warn, metrics, span};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Upper bound on accepted thread counts; anything above this is treated
/// as a configuration mistake and clamped to [`available`].
pub const MAX_THREADS: usize = 256;

const ENV_UNRESOLVED: usize = usize::MAX;

/// Programmatic override (0 = none set).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
/// Cached `MICROSAMPLER_THREADS` resolution (0 = unset/invalid).
static ENV: AtomicUsize = AtomicUsize::new(ENV_UNRESOLVED);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Installs (`Some(n)`) or clears (`None`) the process-wide thread-count
/// override. Takes precedence over `MICROSAMPLER_THREADS`. `Some(0)` is
/// treated as 1 and values above [`MAX_THREADS`] are clamped to
/// [`available`], with a diagnostic; callers wanting a hard error (the
/// `repro` CLI) must validate before calling.
pub fn set_threads(n: Option<usize>) {
    let resolved = match n {
        None => 0,
        Some(0) => {
            diag_warn!("thread count 0 requested; running serially");
            1
        }
        Some(n) if n > MAX_THREADS => {
            let avail = available();
            diag_warn!("thread count {n} exceeds MAX_THREADS={MAX_THREADS}; clamping to {avail}");
            avail
        }
        Some(n) => n,
    };
    OVERRIDE.store(resolved, Ordering::Relaxed);
}

fn env_threads() -> usize {
    let cached = ENV.load(Ordering::Relaxed);
    if cached != ENV_UNRESOLVED {
        return cached;
    }
    let resolved = match std::env::var("MICROSAMPLER_THREADS") {
        Err(_) => 0,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                diag_warn!("ignoring invalid MICROSAMPLER_THREADS={v:?} (want a positive integer)");
                0
            }
            Ok(n) if n > MAX_THREADS => {
                let avail = available();
                diag_warn!("MICROSAMPLER_THREADS={n} exceeds MAX_THREADS={MAX_THREADS}; clamping to {avail}");
                avail
            }
            Ok(n) => n,
        },
    };
    ENV.store(resolved, Ordering::Relaxed);
    resolved
}

/// The effective worker count: [`set_threads`] override, else
/// `MICROSAMPLER_THREADS`, else [`available`].
pub fn threads() -> usize {
    let explicit = OVERRIDE.load(Ordering::Relaxed);
    if explicit != 0 {
        return explicit;
    }
    let env = env_threads();
    if env != 0 {
        return env;
    }
    available()
}

/// Whether the current thread is a pool worker. [`map`] / [`map_mut`]
/// called from a worker run serially inline (nesting protection).
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Resolves an explicit per-call request (`0` = use [`threads`]),
/// clamping absurd values like [`set_threads`] does.
pub fn resolve(requested: usize) -> usize {
    match requested {
        0 => threads(),
        n if n > MAX_THREADS => available(),
        n => n,
    }
}

/// Chunk size targeting ~4 grabs per worker, so slow chunks can be
/// balanced by stealing without paying one cursor bump per item.
fn chunk_size(tasks: usize, workers: usize) -> usize {
    (tasks / (workers * 4)).max(1)
}

/// Applies `f` to every item and returns the results **in input order**.
///
/// Runs on the pool sized by [`threads`]; falls back to a serial inline
/// loop when the pool would not help (one item, one thread, or already on
/// a worker).
///
/// # Panics
///
/// Re-raises the panic of any task after all workers have been joined.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(0, items, f)
}

/// [`map`] with an explicit worker count (`0` = resolve via [`threads`]).
/// Lets a caller carry its own configuration (e.g. the tracer's
/// `TraceConfig::threads`) without touching the process-wide override.
pub fn map_with<T, R, F>(threads_requested: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve(threads_requested).min(items.len());
    if workers <= 1 || in_worker() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    run_pool(items.len(), workers, |i| f(i, &items[i]))
}

struct SyncPtr<T>(*mut T);
impl<T> Clone for SyncPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SyncPtr<T> {}
// SAFETY: the pool's stealing cursor hands every index to exactly one
// worker, so concurrent `&mut` access through the pointer never aliases.
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// [`map`] with mutable access to each item (e.g. draining per-unit row
/// buffers into their hashers). Same ordering, stealing, nesting and
/// panic semantics.
pub fn map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    map_mut_with(0, items, f)
}

/// [`map_mut`] with an explicit worker count (`0` = resolve via
/// [`threads`]).
pub fn map_mut_with<T, R, F>(threads_requested: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = resolve(threads_requested).min(items.len());
    if workers <= 1 || in_worker() {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let base = SyncPtr(items.as_mut_ptr());
    let n = items.len();
    run_pool(n, workers, move |i| {
        // Capture the `SyncPtr` wrapper, not the raw pointer field, so the
        // closure stays `Sync` under edition-2021 disjoint capture.
        let base = base;
        debug_assert!(i < n);
        // SAFETY: i < n, and the cursor assigns each index to one worker.
        let item = unsafe { &mut *base.0.add(i) };
        f(i, item)
    })
}

/// Cooperative cancellation token shared between a pool run and its
/// controller (e.g. a `repro serve` client session cancelling its job).
///
/// Cancellation is a latch: once [`cancel`](CancelToken::cancel) fires,
/// every clone observes it and it never resets. Tasks already running are
/// not interrupted — the pool simply stops *starting* work, so a
/// cancelled [`map_isolated_ctl`] run drains quickly (bounded by the
/// longest single task) and the skipped tasks report
/// [`FailureClass::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Latches the token; all clones observe the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called on any
    /// clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a pooled run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The run's deadline passed.
    DeadlineExceeded,
}

/// Control surface for [`map_isolated_ctl`]: cooperative cancellation and
/// an optional wall-clock deadline. The default (no token, no deadline)
/// never stops a run early.
#[derive(Clone, Debug, Default)]
pub struct RunControl {
    /// Cancel latch checked before each task and each retry attempt.
    pub cancel: Option<CancelToken>,
    /// Hard stop: tasks not *started* before this instant are skipped
    /// with [`FailureClass::Cancelled`] (running tasks finish).
    pub deadline: Option<Instant>,
}

impl RunControl {
    /// Whether new work should stop being started, and why. Cancellation
    /// wins over the deadline when both hold.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(StopReason::DeadlineExceeded);
        }
        None
    }
}

/// How an isolated trial ultimately failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// The task returned `Err` — a simulator-level error such as a
    /// deadlock watchdog trip or an exhausted cycle budget.
    SimError,
    /// The task panicked; the panic was caught at the isolation boundary.
    Panicked,
    /// The task completed but exceeded the policy's wall-clock budget.
    TimedOut,
    /// The task never ran (or stopped retrying) because the run's
    /// [`RunControl`] was cancelled or hit its deadline.
    Cancelled,
}

impl FailureClass {
    /// Stable lowercase identifier used in journals and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::SimError => "sim-error",
            FailureClass::Panicked => "panicked",
            FailureClass::TimedOut => "timed-out",
            FailureClass::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for FailureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Terminal failure record for a quarantined trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrialFailure {
    /// How the final attempt failed.
    pub class: FailureClass,
    /// Human-readable error or panic message from the final attempt.
    pub message: String,
    /// Total attempts made (1 = failed with no retry).
    pub attempts: u32,
}

/// Result of one isolated trial: the task's value, or a quarantine record
/// after the retry budget is exhausted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialOutcome<R> {
    /// The task produced a value within the attempt and time budget.
    Completed(R),
    /// Every permitted attempt failed; the trial is quarantined.
    Failed(TrialFailure),
}

impl<R> TrialOutcome<R> {
    /// Whether the trial produced a value.
    pub fn is_completed(&self) -> bool {
        matches!(self, TrialOutcome::Completed(_))
    }

    /// The completed value, if any.
    pub fn completed(self) -> Option<R> {
        match self {
            TrialOutcome::Completed(r) => Some(r),
            TrialOutcome::Failed(_) => None,
        }
    }

    /// The failure record, if the trial was quarantined.
    pub fn failure(&self) -> Option<&TrialFailure> {
        match self {
            TrialOutcome::Completed(_) => None,
            TrialOutcome::Failed(f) => Some(f),
        }
    }
}

/// Retry and timeout policy for [`map_isolated`].
///
/// The timeout is a *post-hoc classifier*, not a preemption mechanism: a
/// running task cannot be killed from outside, so the simulator's own
/// cycle budget (and deadlock watchdog) bounds how long a trial can run.
/// A task whose wall-clock time reaches `timeout` is classified
/// [`FailureClass::TimedOut`] even if it returned `Ok`, because its
/// result is considered untrustworthy for timing-sensitive sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsolationPolicy {
    /// Maximum attempts per trial (minimum 1; the default 2 allows one
    /// retry).
    pub max_attempts: u32,
    /// Retry attempts that returned `Err` (transient simulator errors).
    pub retry_sim_errors: bool,
    /// Retry attempts that exceeded the wall-clock budget.
    pub retry_timeouts: bool,
    /// Retry attempts that panicked. Off by default: a panic is a bug,
    /// and deterministic trials will just panic again.
    pub retry_panics: bool,
    /// Wall-clock budget per attempt (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// First retry delay of the deterministic exponential backoff
    /// schedule ([`backoff_delay`](IsolationPolicy::backoff_delay)).
    /// `Duration::ZERO` (the default) retries immediately, preserving the
    /// legacy schedule.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay. `Duration::ZERO` means
    /// "uncapped" (bounded only by the attempt budget).
    pub backoff_cap: Duration,
}

impl Default for IsolationPolicy {
    fn default() -> Self {
        IsolationPolicy {
            max_attempts: 2,
            retry_sim_errors: true,
            retry_timeouts: true,
            retry_panics: false,
            timeout: None,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        }
    }
}

impl IsolationPolicy {
    /// The delay slept before retry number `attempt` (1 = first retry):
    /// deterministic capped exponential, `base * 2^(attempt-1)` clamped
    /// to `backoff_cap` when a cap is set. No jitter — sweeps must be
    /// reproducible, and independent trials never thundering-herd a
    /// shared resource here.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        // 2^31 * base already overflows any sane budget; saturate the
        // shift so huge attempt counts cannot wrap.
        let factor = 1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX);
        let delay = self.backoff_base.saturating_mul(factor);
        if self.backoff_cap.is_zero() {
            delay
        } else {
            delay.min(self.backoff_cap)
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one trial under the policy's attempt budget and classifies the
/// outcome. Records `trial.retried` per retry and `trial.quarantined` on
/// terminal failure.
fn run_isolated<T, R, F>(
    policy: &IsolationPolicy,
    ctl: &RunControl,
    index: usize,
    item: &T,
    f: &F,
) -> TrialOutcome<R>
where
    F: Fn(usize, &T, u32) -> Result<R, String>,
{
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        if let Some(reason) = ctl.stop_reason() {
            let message = match reason {
                StopReason::Cancelled => format!("cancelled before attempt {}", attempt + 1),
                StopReason::DeadlineExceeded => {
                    format!("deadline exceeded before attempt {}", attempt + 1)
                }
            };
            return TrialOutcome::Failed(TrialFailure {
                class: FailureClass::Cancelled,
                message,
                attempts: attempt,
            });
        }
        let start = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| f(index, item, attempt)));
        let overtime = policy.timeout.is_some_and(|budget| start.elapsed() >= budget);
        let (class, message) = match caught {
            Ok(Ok(result)) if !overtime => return TrialOutcome::Completed(result),
            Ok(Ok(_)) => {
                let budget = policy.timeout.expect("overtime implies a timeout is set");
                (
                    FailureClass::TimedOut,
                    format!("exceeded {budget:?} wall-clock budget (took {:?})", start.elapsed()),
                )
            }
            // An explicit error message wins over the overtime flag.
            Ok(Err(message)) => (FailureClass::SimError, message),
            Err(payload) => (FailureClass::Panicked, panic_message(payload)),
        };
        attempt += 1;
        let retryable = match class {
            FailureClass::SimError => policy.retry_sim_errors,
            FailureClass::TimedOut => policy.retry_timeouts,
            FailureClass::Panicked => policy.retry_panics,
            // Cancellation returns above without classifying an attempt.
            FailureClass::Cancelled => false,
        };
        if attempt < max_attempts && retryable {
            metrics::record("trial.retried", 1.0);
            diag_warn!("trial {index} attempt {attempt} failed ({class}): {message}; retrying");
            let delay = policy.backoff_delay(attempt);
            if !delay.is_zero() {
                thread::sleep(delay);
            }
            continue;
        }
        metrics::record("trial.quarantined", 1.0);
        return TrialOutcome::Failed(TrialFailure { class, message, attempts: attempt });
    }
}

/// [`map`] with per-task fault isolation: each task runs behind a panic
/// boundary and a bounded retry loop, and failures become
/// [`TrialOutcome::Failed`] values instead of unwinding the caller.
///
/// The task receives `(index, item, attempt)` with `attempt` counting
/// from 0, so callers can salt retries (e.g. re-seed a fault plan per
/// attempt). Ordering, stealing, and nesting semantics match [`map`].
pub fn map_isolated<T, R, F>(policy: &IsolationPolicy, items: &[T], f: F) -> Vec<TrialOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, u32) -> Result<R, String> + Sync,
{
    map_isolated_ctl(policy, &RunControl::default(), items, f)
}

/// [`map_isolated`] under a [`RunControl`]: once the control's token is
/// cancelled or its deadline passes, tasks that have not started (and
/// retries that have not begun) are skipped with
/// [`FailureClass::Cancelled`] instead of running. Tasks already
/// executing finish normally, so the pooled results stay deterministic
/// for every task that did run.
pub fn map_isolated_ctl<T, R, F>(
    policy: &IsolationPolicy,
    ctl: &RunControl,
    items: &[T],
    f: F,
) -> Vec<TrialOutcome<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, u32) -> Result<R, String> + Sync,
{
    let policy = *policy;
    let ctl = ctl.clone();
    map(items, move |i, item| run_isolated(&policy, &ctl, i, item, &f))
}

/// The scoped pool core: `workers` threads steal chunked index ranges
/// from a shared cursor, stash `(index, result)` pairs locally, and the
/// caller scatters them back into input order.
fn run_pool<R, F>(tasks: usize, workers: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let chunk = chunk_size(tasks, workers);
    let cursor = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let collect_spans = span::enabled();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (cursor, steals, task) = (&cursor, &steals, &task);
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let worker_span = span::span("par.worker");
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut grabs = 0usize;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= tasks {
                            break;
                        }
                        grabs += 1;
                        for i in start..(start + chunk).min(tasks) {
                            local.push((i, task(i)));
                        }
                    }
                    steals.fetch_add(grabs.saturating_sub(1), Ordering::Relaxed);
                    drop(worker_span);
                    let forest = if collect_spans { span::take() } else { Vec::new() };
                    (local, forest)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((local, forest)) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                    span::merge_under_current(forest);
                }
                // Propagate the first worker panic; `thread::scope` still
                // joins the remaining workers before unwinding past it.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    metrics::record_batch(
        "par",
        &[
            ("tasks", tasks as f64),
            ("workers", workers as f64),
            ("steal", steals.load(Ordering::Relaxed) as f64),
        ],
    );
    slots.into_iter().map(|r| r.expect("every index executed by exactly one worker")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The override and the obs registries are process-global; serialize
    // every test that touches them.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn map_preserves_input_order() {
        let _l = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..101).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 7, 32] {
            let par = with_threads(threads, || map(&items, |_, &x| x * 3 + 1));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_matching_indices() {
        let _l = LOCK.lock().unwrap();
        let items = vec![10u64, 11, 12, 13, 14];
        let pairs = with_threads(3, || map(&items, |i, &x| (i as u64, x)));
        for (i, (idx, x)) in pairs.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*x, items[i]);
        }
    }

    #[test]
    fn map_mut_updates_every_item_once() {
        let _l = LOCK.lock().unwrap();
        let mut items: Vec<u64> = vec![0; 57];
        let returned = with_threads(4, || {
            map_mut(&mut items, |i, slot| {
                *slot += i as u64 + 1;
                *slot
            })
        });
        let want: Vec<u64> = (0..57).map(|i| i + 1).collect();
        assert_eq!(items, want);
        assert_eq!(returned, want);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let _l = LOCK.lock().unwrap();
        let empty: [u64; 0] = [];
        assert!(with_threads(4, || map(&empty, |_, &x| x)).is_empty());
        assert_eq!(with_threads(4, || map(&[9u64], |_, &x| x + 1)), vec![10]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let _l = LOCK.lock().unwrap();
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map(&items, |_, &x| {
                    assert!(x != 11, "task 11 exploded");
                    x
                })
            })
        });
        assert!(result.is_err(), "panic must reach the caller");
        set_threads(None); // with_threads unwound before restoring
    }

    #[test]
    fn nested_map_runs_inline() {
        let _l = LOCK.lock().unwrap();
        let outer: Vec<u64> = (0..4).collect();
        let matrix = with_threads(4, || {
            map(&outer, |_, &row| {
                assert!(in_worker());
                let inner: Vec<u64> = (0..8).collect();
                // Must not spawn a second pool layer; runs serially inline.
                map(&inner, move |_, &col| row * 100 + col)
            })
        });
        assert_eq!(matrix[2][5], 205);
        assert!(!in_worker());
    }

    #[test]
    fn thread_count_resolution_and_clamping() {
        let _l = LOCK.lock().unwrap();
        set_threads(Some(7));
        assert_eq!(threads(), 7);
        set_threads(Some(MAX_THREADS + 1));
        assert_eq!(threads(), available(), "absurd values clamp to available_parallelism");
        set_threads(Some(0));
        assert_eq!(threads(), 1, "zero is treated as serial");
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn pool_records_metrics() {
        let _l = LOCK.lock().unwrap();
        metrics::set_enabled(true);
        metrics::reset();
        let items: Vec<u64> = (0..64).collect();
        with_threads(4, || map(&items, |_, &x| x));
        let snap = metrics::snapshot();
        metrics::set_enabled(false);
        metrics::reset();
        let get = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, a)| a.last);
        assert_eq!(get("par.tasks"), Some(64.0));
        assert_eq!(get("par.workers"), Some(4.0));
        assert!(get("par.steal").is_some());
    }

    #[test]
    fn map_isolated_completes_ordinary_tasks() {
        let _l = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..23).collect();
        let outcomes = with_threads(4, || {
            map_isolated(&IsolationPolicy::default(), &items, |_, &x, _| Ok(x * 2))
        });
        let values: Vec<u64> = outcomes.into_iter().map(|o| o.completed().unwrap()).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(values, want);
    }

    #[test]
    fn map_isolated_quarantines_panics_without_unwinding() {
        let _l = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..8).collect();
        let outcomes = with_threads(4, || {
            map_isolated(&IsolationPolicy::default(), &items, |_, &x, _| {
                assert!(x != 5, "trial 5 exploded");
                Ok::<u64, String>(x)
            })
        });
        assert_eq!(outcomes.iter().filter(|o| o.is_completed()).count(), 7);
        let failure = outcomes[5].failure().expect("trial 5 quarantined");
        assert_eq!(failure.class, FailureClass::Panicked);
        assert_eq!(failure.attempts, 1, "panics are not retried by default");
        assert!(failure.message.contains("trial 5 exploded"), "{}", failure.message);
    }

    #[test]
    fn map_isolated_retries_sim_errors_with_attempt_salt() {
        let _l = LOCK.lock().unwrap();
        let items = [1u64, 2, 3];
        let outcomes = with_threads(2, || {
            map_isolated(&IsolationPolicy::default(), &items, |_, &x, attempt| {
                if x == 2 && attempt == 0 {
                    Err("transient wobble".to_string())
                } else {
                    Ok(x * 10 + attempt as u64)
                }
            })
        });
        assert_eq!(outcomes[0], TrialOutcome::Completed(10));
        assert_eq!(outcomes[1], TrialOutcome::Completed(21), "succeeded on the retry attempt");
        assert_eq!(outcomes[2], TrialOutcome::Completed(30));
    }

    #[test]
    fn map_isolated_exhausts_retries_and_records_metrics() {
        let _l = LOCK.lock().unwrap();
        metrics::set_enabled(true);
        metrics::reset();
        let items = [0u64];
        let outcomes = with_threads(1, || {
            map_isolated(&IsolationPolicy::default(), &items, |_, _, _| {
                Err::<u64, String>("deadlock: no commit for 20000 cycles".to_string())
            })
        });
        let snap = metrics::snapshot();
        metrics::set_enabled(false);
        metrics::reset();
        let failure = outcomes[0].failure().expect("quarantined");
        assert_eq!(failure.class, FailureClass::SimError);
        assert_eq!(failure.attempts, 2);
        let sum = |name: &str| snap.iter().find(|(n, _)| n == name).map(|(_, a)| a.sum);
        assert_eq!(sum("trial.retried"), Some(1.0));
        assert_eq!(sum("trial.quarantined"), Some(1.0));
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_exponential() {
        let policy = IsolationPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(60),
            ..IsolationPolicy::default()
        };
        let schedule: Vec<Duration> = (0..=6).map(|a| policy.backoff_delay(a)).collect();
        assert_eq!(
            schedule,
            vec![
                Duration::ZERO,            // attempt 0 never sleeps
                Duration::from_millis(10), // first retry: base
                Duration::from_millis(20), // base * 2
                Duration::from_millis(40), // base * 4
                Duration::from_millis(60), // base * 8 clamps to the cap
                Duration::from_millis(60),
                Duration::from_millis(60),
            ]
        );
        // No cap: pure exponential.
        let uncapped = IsolationPolicy { backoff_cap: Duration::ZERO, ..policy };
        assert_eq!(uncapped.backoff_delay(5), Duration::from_millis(160));
        // Absurd attempt counts saturate instead of wrapping.
        assert!(uncapped.backoff_delay(1000) >= uncapped.backoff_delay(999));
        // The legacy default (no base) never sleeps.
        assert_eq!(IsolationPolicy::default().backoff_delay(3), Duration::ZERO);
    }

    #[test]
    fn map_isolated_sleeps_backoff_between_retries() {
        let _l = LOCK.lock().unwrap();
        let policy = IsolationPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(20),
            ..IsolationPolicy::default()
        };
        let start = Instant::now();
        let outcomes = with_threads(1, || {
            map_isolated(&policy, &[0u64], |_, _, _| Err::<u64, String>("always fails".into()))
        });
        // Two retries: 20ms + 40ms of scheduled backoff.
        assert!(start.elapsed() >= Duration::from_millis(60), "backoff must be slept");
        assert_eq!(outcomes[0].failure().unwrap().attempts, 3);
    }

    #[test]
    fn cancelled_token_skips_unstarted_tasks() {
        let _l = LOCK.lock().unwrap();
        let token = CancelToken::new();
        token.cancel();
        let ctl = RunControl { cancel: Some(token.clone()), deadline: None };
        let items: Vec<u64> = (0..8).collect();
        let outcomes = with_threads(2, || {
            map_isolated_ctl(&IsolationPolicy::default(), &ctl, &items, |_, &x, _| Ok(x))
        });
        for o in &outcomes {
            let failure = o.failure().expect("pre-cancelled run never starts a task");
            assert_eq!(failure.class, FailureClass::Cancelled);
            assert_eq!(failure.attempts, 0, "no attempt was made");
            assert!(failure.message.contains("cancelled"), "{}", failure.message);
        }
        assert!(token.is_cancelled());
    }

    #[test]
    fn mid_run_cancellation_completes_started_tasks_only() {
        let _l = LOCK.lock().unwrap();
        let token = CancelToken::new();
        let ctl = RunControl { cancel: Some(token.clone()), deadline: None };
        let items: Vec<u64> = (0..64).collect();
        let outcomes = with_threads(1, || {
            let token = token.clone();
            map_isolated_ctl(&IsolationPolicy::default(), &ctl, &items, move |i, &x, _| {
                if i == 2 {
                    token.cancel();
                }
                Ok(x)
            })
        });
        let completed = outcomes.iter().filter(|o| o.is_completed()).count();
        assert_eq!(completed, 3, "tasks after the cancelling one are skipped");
        assert_eq!(outcomes[3].failure().unwrap().class, FailureClass::Cancelled);
    }

    #[test]
    fn expired_deadline_reports_deadline_message() {
        let _l = LOCK.lock().unwrap();
        let ctl = RunControl { cancel: None, deadline: Some(Instant::now()) };
        let outcomes = with_threads(1, || {
            map_isolated_ctl(&IsolationPolicy::default(), &ctl, &[1u64], |_, &x, _| Ok(x))
        });
        let failure = outcomes[0].failure().expect("expired deadline skips the task");
        assert_eq!(failure.class, FailureClass::Cancelled);
        assert!(failure.message.contains("deadline"), "{}", failure.message);
    }

    #[test]
    fn map_isolated_classifies_overtime_results() {
        let _l = LOCK.lock().unwrap();
        let policy = IsolationPolicy {
            timeout: Some(Duration::ZERO),
            retry_timeouts: false,
            ..IsolationPolicy::default()
        };
        let outcomes = with_threads(1, || map_isolated(&policy, &[7u64], |_, &x, _| Ok(x)));
        let failure = outcomes[0].failure().expect("zero budget times out");
        assert_eq!(failure.class, FailureClass::TimedOut);
        assert_eq!(failure.attempts, 1);
    }

    #[test]
    fn worker_spans_merge_under_caller_span() {
        let _l = LOCK.lock().unwrap();
        span::set_enabled(true);
        span::take();
        {
            let _stage = span::span("stage");
            let items: Vec<u64> = (0..32).collect();
            with_threads(4, || {
                map(&items, |_, &x| {
                    span::with_span("task", || x);
                })
            });
        }
        let tree = span::take();
        span::set_enabled(false);
        let stage = span::find(&tree, "stage").expect("stage span recorded");
        let worker = stage.child("par.worker").expect("worker spans under the caller's span");
        assert!(worker.count >= 1);
        assert_eq!(span::find(&tree, "stage/par.worker/task").unwrap().count, 32);
    }
}
